"""Batch mining pipeline: equivalence guard, sharding, fast-forward."""

import random

import pytest

from repro import (
    Document,
    FrequencyTensor,
    Point,
    STComb,
    STLocal,
    SpatiotemporalCollection,
)
from repro.core.config import STLocalConfig
from repro.core.stlocal import STLocalTermTracker
from repro.errors import StreamError
from repro.pipeline import BatchMiner, split_terms
from repro.search import BurstySearchEngine


def build_seed_corpus(n_streams=20, timeline=48, n_terms=14, seed=3):
    """Localised synthetic events, the seed corpus of the ROADMAP."""
    rng = random.Random(seed)
    coll = SpatiotemporalCollection(timeline=timeline)
    for i in range(n_streams):
        coll.add_stream(
            f"s{i:02d}", Point(float(i % 5) * 6.0, float(i // 5) * 6.0)
        )
    doc_id = 0
    for index in range(n_terms):
        term = f"event{index:02d}"
        start = rng.randint(0, timeline - 10)
        span = rng.randint(3, 7)
        members = rng.sample(range(n_streams), rng.randint(1, 4))
        for t in range(start, start + span):
            for member in members:
                for _ in range(rng.randint(1, 4)):
                    coll.add_document(
                        Document(doc_id, f"s{member:02d}", t, (term,))
                    )
                    doc_id += 1
    # A term that never occurs plus background filler everywhere.
    for t in range(timeline):
        coll.add_document(Document(doc_id, "s00", t, ("filler",)))
        doc_id += 1
    return coll


@pytest.fixture(scope="module")
def corpus():
    coll = build_seed_corpus()
    return coll, FrequencyTensor(coll), coll.locations()


class TestEquivalenceGuard:
    """BatchMiner output must equal per-term mining — same patterns,
    same scores — on the seed synthetic corpus."""

    def test_regional_identical_to_per_term_replay(self, corpus):
        coll, tensor, locations = corpus
        stlocal = STLocal()
        per_term = {}
        for term in sorted(tensor.terms):
            patterns = stlocal.patterns_for_term(tensor, term, locations)
            if patterns:
                per_term[term] = patterns
        batch = BatchMiner(stlocal=stlocal).mine_regional(
            tensor, locations=locations
        )
        assert repr(batch) == repr(per_term)

    def test_regional_without_tail_truncation(self, corpus):
        coll, tensor, locations = corpus
        stlocal = STLocal()
        truncated = BatchMiner(stlocal=stlocal).mine_regional(
            tensor, locations=locations
        )
        full = BatchMiner(
            stlocal=stlocal, truncate_tails=False
        ).mine_regional(tensor, locations=locations)
        assert repr(full) == repr(truncated)

    def test_combinatorial_identical_to_per_term(self, corpus):
        coll, tensor, locations = corpus
        stcomb = STComb()
        per_term = {}
        for term in sorted(tensor.terms):
            patterns = stcomb.patterns_for_term(tensor, term)
            if patterns:
                per_term[term] = patterns
        batch = BatchMiner(stcomb=stcomb).mine_combinatorial(tensor)
        assert repr(batch) == repr(per_term)

    def test_mine_facades_delegate(self, corpus):
        coll, tensor, locations = corpus
        direct = BatchMiner().mine_regional(tensor, locations=locations)
        assert repr(STLocal().mine(tensor, locations=locations)) == repr(
            direct
        )
        assert repr(STComb().mine(coll)) == repr(
            BatchMiner().mine_combinatorial(coll)
        )

    def test_collection_input(self, corpus):
        coll, tensor, locations = corpus
        assert repr(STLocal().mine(coll)) == repr(
            STLocal().mine(tensor, locations=locations)
        )

    def test_duplicate_terms_deduplicated(self, corpus):
        """Regression: a repeated term must not be fed each snapshot
        once per occurrence (which corrupted its tracker's clock)."""
        coll, tensor, locations = corpus
        once = STLocal().mine(
            tensor, terms=["event00"], locations=locations
        )
        twice = STLocal().mine(
            tensor, terms=["event00", "event00"], locations=locations
        )
        assert repr(twice) == repr(once)
        assert repr(
            STComb().mine(tensor, terms=["event00", "event00"])
        ) == repr(STComb().mine(tensor, terms=["event00"]))


class TestSharding:
    def test_split_terms_partitions(self):
        terms = [f"t{i}" for i in range(11)]
        shards = split_terms(terms, 3)
        assert len(shards) == 3
        merged = sorted(term for shard in shards for term in shard)
        assert merged == sorted(terms)

    def test_split_more_workers_than_terms(self):
        shards = split_terms(["a", "b"], 8)
        assert len(shards) == 2

    def test_split_empty_vocabulary_yields_no_shards(self):
        # Regression: ``[[]]`` used to make mine_shards spawn a worker
        # process just to mine an empty shard.
        assert split_terms([], 4) == []
        assert split_terms([], 1) == []

    def test_sharded_mine_empty_vocabulary_short_circuits(self):
        from repro import Point, SpatiotemporalCollection

        empty = SpatiotemporalCollection(timeline=8)
        empty.add_stream("s0", Point(0.0, 0.0))
        miner = BatchMiner(workers=4)
        assert miner.mine_regional(empty) == {}
        assert miner.mine_combinatorial(empty) == {}

    def test_sharded_regional_equals_serial(self, corpus):
        coll, tensor, locations = corpus
        serial = BatchMiner().mine_regional(tensor, locations=locations)
        sharded = BatchMiner(workers=2).mine_regional(
            tensor, locations=locations
        )
        assert sharded == serial
        assert list(sharded) == list(serial)
        for term, patterns in serial.items():
            assert [p.score for p in sharded[term]] == [
                p.score for p in patterns
            ]

    def test_sharded_combinatorial_equals_serial(self, corpus):
        coll, tensor, locations = corpus
        serial = BatchMiner().mine_combinatorial(tensor)
        sharded = BatchMiner(workers=2).mine_combinatorial(tensor)
        assert sharded == serial
        assert list(sharded) == list(serial)


class TestFastForward:
    def locations(self):
        return {f"g{i}": Point(float(i), 0.0) for i in range(4)}

    def test_skip_equals_empty_replay(self):
        config = STLocalConfig(warmup=0)
        replayed = STLocalTermTracker(self.locations(), config)
        for _ in range(7):
            replayed.process({})
        replayed.process({"g1": 5.0})

        skipped = STLocalTermTracker(self.locations(), config)
        skipped.fast_forward(7)
        skipped.process({"g1": 5.0})

        assert skipped.clock == replayed.clock == 8
        assert skipped.rectangle_history == replayed.rectangle_history
        assert skipped.open_history == replayed.open_history
        assert repr(skipped.windows()) == repr(replayed.windows())

    def test_rejects_backwards(self):
        tracker = STLocalTermTracker(self.locations())
        tracker.process({})
        tracker.process({})
        with pytest.raises(StreamError):
            tracker.fast_forward(1)

    def test_rejects_after_observation(self):
        tracker = STLocalTermTracker(
            self.locations(), STLocalConfig(warmup=0)
        )
        tracker.process({"g0": 2.0})
        with pytest.raises(StreamError):
            tracker.fast_forward(5)


class TestEnginePrecompute:
    def test_precomputed_results_match_lazy(self, corpus):
        coll, tensor, locations = corpus
        patterns = STComb().mine(coll, terms=["event00", "event01"])
        eager = BurstySearchEngine(coll, patterns)
        lazy = BurstySearchEngine(coll, patterns, precompute=False)
        for query in ("event00", "event01", "event00 event01"):
            eager_hits = eager.search(query, k=8)
            lazy_hits = lazy.search(query, k=8)
            assert [
                (h.document.doc_id, h.score) for h in eager_hits
            ] == [(h.document.doc_id, h.score) for h in lazy_hits]

    def test_precompute_builds_all_pattern_terms(self, corpus):
        coll, tensor, locations = corpus
        patterns = STComb().mine(coll, terms=["event00", "event01"])
        engine = BurstySearchEngine(coll, patterns)
        for term in patterns:
            assert engine._index.get(term) is not None
        # Idempotent: a second sweep finds nothing left to build.
        assert engine.precompute() == 0

    def test_patternless_term_still_searchable(self, corpus):
        coll, tensor, locations = corpus
        patterns = STComb().mine(coll, terms=["event00"])
        engine = BurstySearchEngine(coll, patterns)
        assert engine.search("filler", k=3) == []
