"""Fault-injection suite: crash-point sweeps, typed IO failures,
bit-flip detection and degraded-mode serving semantics.

The central invariant, swept exhaustively rather than sampled: killing
a save at *any* write/fsync/rename boundary leaves a directory that
either refuses to load with a typed
:class:`~repro.errors.StoreCorruptionError` (no manifest — the save
never committed) or loads byte-identical to an unfaulted run (the
manifest rename already happened).  Never a half-state, never an
untyped traceback.

All schedules are pure data (:class:`~repro.faults.FaultPlan`): the
same plan over the same workload produces the same failure sequence,
so every test here is deterministic and replayable.
"""

import dataclasses
import os
import random

import pytest

from repro import (
    BatchMiner,
    BurstySearchEngine,
    Document,
    LiveCollection,
    Point,
    SpatiotemporalCollection,
    save_search_index,
)
from repro.errors import (
    ConfigurationError,
    StoreCorruptionError,
    StoreError,
    StoreIOError,
)
from repro.faults import (
    FaultPlan,
    FaultRule,
    FaultyIO,
    InjectedCrash,
    install,
    record_operations,
    sweep_crash_points,
)
from repro.live import LiveSearchEngine
from repro.store import SegmentReader
from repro.store.fsck import fsck_store, repair_store


def build_collection(seed=7, streams=4, timeline=16):
    """Tiny deterministic corpus: one burst per term plus filler."""
    rng = random.Random(seed)
    collection = SpatiotemporalCollection(timeline=timeline)
    sids = [f"s{i}" for i in range(streams)]
    for i, sid in enumerate(sids):
        collection.add_stream(sid, Point(float(i % 2), float(i // 2)))
    counter = 0
    for term in ("quake", "storm"):
        start = rng.randint(3, timeline - 7)
        for t in range(start, start + 4):
            for sid in rng.sample(sids, k=3):
                counter += 1
                collection.add_document(
                    Document(counter, sid, t, (term, term))
                )
    for t in range(timeline):
        for sid in sids:
            if rng.random() < 0.4:
                counter += 1
                collection.add_document(Document(counter, sid, t, ("filler",)))
    return collection


def build_engine(seed=7):
    collection = build_collection(seed=seed)
    trackers = BatchMiner().regional_trackers(collection)
    mined = {
        term: trackers[term].patterns(term)
        for term in sorted(collection.vocabulary)
        if trackers[term].patterns(term)
    }
    return BurstySearchEngine(collection, mined), mined


def build_live_engine(upto=10, seed=11):
    """A live engine with a few ingested timesteps, ready to checkpoint."""
    rng = random.Random(seed)
    live = LiveCollection(16)
    for i in range(4):
        live.add_stream(f"s{i}", Point(float(i % 2), float(i // 2)))
    engine = LiveSearchEngine(live)
    counter = 0
    for t in range(upto):
        for i in range(4):
            if t in (3, 4, 5) or rng.random() < 0.3:
                counter += 1
                live.ingest(
                    Document(counter, f"s{i}", t, ("storm", "storm"))
                )
        engine.search("storm", k=5)
    return engine


class TestFaultPlans:
    def test_rule_validates_op_and_action(self):
        with pytest.raises(ConfigurationError):
            FaultRule(op="chmod", action="crash_before")
        with pytest.raises(ConfigurationError):
            FaultRule(op="replace", action="torn")
        with pytest.raises(ConfigurationError):
            FaultRule(op="read", action="crash_before")

    def test_same_plan_same_failure_sequence(self, tmp_path):
        """The determinism contract: a plan replays byte-for-byte."""
        engine, _ = build_engine()
        plan = FaultPlan(
            [FaultRule(op="write", action="enospc", path="scores", index=0)]
        )
        sequences = []
        for attempt in range(2):
            faulty = FaultyIO(plan)
            target = str(tmp_path / f"run{attempt}")
            with install(faulty):
                with pytest.raises(StoreIOError):
                    save_search_index(target, engine, "regional")
            sequences.append(
                [(op, os.path.basename(p), a) for op, p, a in faulty.events]
            )
        assert sequences[0] == sequences[1]
        assert sequences[0] == [("write", "scores.npy", "enospc")]

    def test_plans_are_plain_data(self):
        plan = FaultPlan.read_eio(path="scores", count=2)
        rebuilt = FaultPlan(
            [FaultRule(**entry) for entry in
             (dataclasses.asdict(rule) for rule in plan.rules)]
        )
        assert rebuilt == plan

    def test_injected_crash_pierces_broad_handlers(self):
        """``except Exception`` must not catch a simulated kill -9."""

        def swallow_everything():
            try:
                raise InjectedCrash("kill")
            except Exception:  # repro: noqa[exception-hygiene] -- the test IS about broad handlers not seeing the crash
                return "swallowed"

        with pytest.raises(InjectedCrash):
            swallow_everything()


class TestCrashPointSweep:
    @pytest.mark.parametrize("codec", ["raw", "packed"])
    def test_save_survives_every_boundary(self, tmp_path, codec):
        engine, _ = build_engine()

        def save(path):
            save_search_index(path, engine, "regional", codec=codec)

        points = sweep_crash_points(save, str(tmp_path))
        violations = [p for p in points if not p.ok]
        assert violations == []
        # The sweep must actually cover both outcomes: kills before the
        # manifest rename refuse, kills at/after it serve completely.
        verdicts = {p.verdict for p in points}
        assert verdicts == {"refused", "complete"}

    @pytest.mark.parametrize("codec", ["raw", "packed"])
    def test_live_checkpoint_survives_every_boundary(self, tmp_path, codec):
        engine = build_live_engine()

        def save(path):
            engine.checkpoint(path, codec=codec)

        points = sweep_crash_points(save, str(tmp_path))
        violations = [p for p in points if not p.ok]
        assert violations == []
        assert {p.verdict for p in points} == {"refused", "complete"}

    def test_torn_manifest_write_refuses(self, tmp_path):
        """A manifest torn mid-write must never be served."""
        engine, _ = build_engine()
        target = str(tmp_path / "torn")
        plan = FaultPlan.torn_write("MANIFEST.json.tmp", keep_bytes=20)
        with install(FaultyIO(plan)):
            with pytest.raises(InjectedCrash):
                save_search_index(target, engine, "regional")
        # The torn bytes landed in the temp sibling only; no manifest
        # was installed, so the reader refuses with a typed error.
        with pytest.raises(StoreCorruptionError, match="interrupted"):
            SegmentReader(target)

    def test_recorded_operations_end_with_commit(self, tmp_path):
        """The atomic-rename boundary is the last durable transition."""
        engine, _ = build_engine()

        def save(path):
            save_search_index(path, engine, "regional")

        ops = record_operations(save, str(tmp_path / "rec"))
        replaces = [(op, p) for op, p in ops if op == "replace"]
        assert len(replaces) == 1
        assert replaces[0][1].endswith("MANIFEST.json")
        # rename happens after every payload write+fsync, before only
        # the final directory fsync.
        assert ops.index(replaces[0]) == len(ops) - 2
        assert ops[-1][0] == "fsync_dir"


class TestTypedIOFailures:
    def test_enospc_is_typed_store_io_error(self, tmp_path):
        engine, _ = build_engine()
        with install(FaultyIO(FaultPlan.enospc())):
            with pytest.raises(StoreIOError, match="No space left|ENOSPC|cannot write"):
                save_search_index(str(tmp_path / "full"), engine, "regional")

    def test_enospc_on_manifest_commit_is_typed(self, tmp_path):
        engine, _ = build_engine()
        plan = FaultPlan.enospc(path="MANIFEST.json.tmp")
        with install(FaultyIO(plan)):
            with pytest.raises(StoreIOError, match="manifest"):
                save_search_index(str(tmp_path / "full"), engine, "regional")

    def test_read_eio_surfaces_typed_when_failing(self, tmp_path):
        engine, _ = build_engine()
        path = str(tmp_path / "idx")
        save_search_index(path, engine, "regional")
        loaded = BurstySearchEngine.from_store(path)
        plan = FaultPlan.read_eio(path="scores", count=10)
        with install(FaultyIO(plan)):
            with pytest.raises(StoreIOError, match="I/O error"):
                loaded.search("storm", k=5)


class TestDegradedServing:
    def _saved(self, tmp_path, codec="raw"):
        engine, mined = build_engine()
        path = str(tmp_path / "idx")
        save_search_index(path, engine, "regional", codec=codec)
        return path, engine, mined

    def test_transient_eio_retried_once_then_served(self, tmp_path):
        """One transient read error is absorbed by the retry."""
        path, engine, _ = self._saved(tmp_path)
        loaded = BurstySearchEngine.from_store(path, on_corruption="degrade")
        plan = FaultPlan.read_eio(path="scores", count=1)
        with install(FaultyIO(plan)):
            results = loaded.search("storm", k=5)
        assert [(r.document.doc_id, r.score) for r in results] == [
            (r.document.doc_id, r.score) for r in engine.search("storm", k=5)
        ]
        assert loaded.degraded_report() == {}

    def test_persistent_eio_quarantines_after_one_retry(self, tmp_path):
        path, _, mined = self._saved(tmp_path)
        loaded = BurstySearchEngine.from_store(path, on_corruption="degrade")
        plan = FaultPlan.read_eio(path="scores", count=2)
        with install(FaultyIO(plan)):
            results, stats = loaded.search_with_stats("storm", k=5)
        assert results == []
        assert stats.degraded_terms == ("storm",)
        assert "storm" in loaded.degraded_report()
        # Exactly two read probes were attempted: original + one retry.

    def test_fail_policy_raises_on_eio(self, tmp_path):
        path, _, _ = self._saved(tmp_path)
        loaded = BurstySearchEngine.from_store(path)
        with install(FaultyIO(FaultPlan.read_eio(path="scores", count=2))):
            with pytest.raises(StoreIOError):
                loaded.search("storm", k=5)

    @pytest.mark.parametrize("codec", ["raw", "packed"])
    def test_quarantined_term_isolated_healthy_terms_identical(
        self, tmp_path, codec
    ):
        path, engine, mined = self._saved(tmp_path, codec=codec)
        victim = os.path.join(
            path,
            "postings",
            "scores_payload.npy" if codec == "packed" else "scores.npy",
        )
        with open(victim, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([byte[0] ^ 0x01]))
        with pytest.raises(StoreCorruptionError):
            BurstySearchEngine.from_store(path)
        loaded = BurstySearchEngine.from_store(path, on_corruption="degrade")
        _, stats = loaded.search_with_stats(" ".join(sorted(mined)), k=10)
        degraded = loaded.degraded_report()
        assert degraded  # the flip hit some term's column
        assert set(stats.degraded_terms) == set(degraded)
        for term in sorted(set(mined) - set(degraded)):
            assert [
                (r.document.doc_id, r.score)
                for r in loaded.search(term, k=10)
            ] == [
                (r.document.doc_id, r.score)
                for r in engine.search(term, k=10)
            ]

    def test_structural_damage_refuses_even_in_degrade(self, tmp_path):
        path, _, _ = self._saved(tmp_path)
        victim = os.path.join(path, "postings", "indptr.npy")
        with open(victim, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([byte[0] ^ 0x01]))
        with pytest.raises(StoreCorruptionError, match="structural"):
            BurstySearchEngine.from_store(path, on_corruption="degrade")


class TestBitFlipDetection:
    @pytest.mark.parametrize("codec", ["raw", "packed"])
    def test_write_time_bit_flip_caught_by_fsck(self, tmp_path, codec):
        """Manifest CRCs are computed from memory, so a device that
        flips a bit on the way to disk mismatches and fsck sees it."""
        engine, _ = build_engine()
        path = str(tmp_path / "idx")
        plan = FaultPlan.bit_flip(path="rows", byte=-1)
        with install(FaultyIO(plan)):
            save_search_index(path, engine, "regional", codec=codec)
        report = fsck_store(path)
        assert report.exit_code == 1
        assert any("checksum mismatch" in f.verdict for f in report.damaged_files)

    def test_repair_quarantines_and_restores_loadable_store(self, tmp_path):
        engine, mined = build_engine()
        path = str(tmp_path / "idx")
        with install(FaultyIO(FaultPlan.bit_flip(path="ties", byte=-1))):
            save_search_index(path, engine, "regional")
        assert fsck_store(path).exit_code == 1
        report = repair_store(path)
        assert report.quarantined and report.rebuilt == ("postings",)
        assert fsck_store(path).exit_code == 0
        loaded = BurstySearchEngine.from_store(path)
        for term in sorted(mined):
            assert [
                (r.document.doc_id, r.score) for r in loaded.search(term, k=5)
            ] == [
                (r.document.doc_id, r.score) for r in engine.search(term, k=5)
            ]

    def test_repair_refuses_source_damage(self, tmp_path):
        engine, _ = build_engine()
        path = str(tmp_path / "idx")
        save_search_index(path, engine, "regional")
        victim = os.path.join(path, "documents", "meta.json")
        with open(victim, "r+b") as handle:
            handle.seek(0)
            byte = handle.read(1)
            handle.seek(0)
            handle.write(bytes([byte[0] ^ 0x01]))
        with pytest.raises(StoreCorruptionError, match="source data"):
            repair_store(path)

    def test_fsck_unreadable_store_exits_2(self, tmp_path):
        report = fsck_store(str(tmp_path / "nowhere"))
        assert report.exit_code == 2
        assert report.error


class TestErrorMessages:
    """Satellite contract: errors name the file and expected/actual."""

    def test_checksum_mismatch_names_path_and_both_crcs(self, tmp_path):
        engine, _ = build_engine()
        path = str(tmp_path / "idx")
        save_search_index(path, engine, "regional")
        victim = os.path.join(path, "postings", "scores.npy")
        with open(victim, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([byte[0] ^ 0x01]))
        with pytest.raises(StoreCorruptionError) as excinfo:
            SegmentReader(path, verify=True)
        message = str(excinfo.value)
        assert "postings/scores.npy" in message
        assert "expected crc32 0x" in message
        assert "found 0x" in message
        assert "repro fsck" in message

    def test_missing_file_error_names_it(self, tmp_path):
        engine, _ = build_engine()
        path = str(tmp_path / "idx")
        save_search_index(path, engine, "regional")
        os.remove(os.path.join(path, "postings", "ties.npy"))
        with pytest.raises(StoreCorruptionError, match="postings/ties.npy"):
            SegmentReader(path, verify=True)
