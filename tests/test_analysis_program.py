"""Whole-program analysis tests: graph, fixpoints and the four rules.

Each program rule is exercised against a committed fixture *package*
(``tests/fixtures/analysis/program/<rule>/``): a multi-module mini
tree under a fake ``src/repro/...`` layout, with ``# M:<tag>`` markers
on the lines findings must anchor to, plus a clean twin tree that must
produce zero findings.  The trees run through the real
:func:`repro.analysis.check_paths` pipeline, so import resolution,
summary extraction, graph fixpoints, scoping and suppressions are all
on the hook.
"""

import os

import pytest

from repro.analysis import check_paths, default_config
from repro.analysis.program.graph import ProgramGraph
from repro.analysis.program.summary import summarize_module
from repro.analysis.reporting import render_text

FIXTURES = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "fixtures",
    "analysis",
    "program",
)


def fixture_tree(rule_dir, variant):
    path = os.path.join(FIXTURES, rule_dir, variant)
    assert os.path.isdir(path), path
    return path


def marked_line(tree, relpath, tag):
    """1-based line carrying ``# M:<tag>`` in a fixture file."""
    with open(os.path.join(tree, relpath), "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if f"# M:{tag}" in line:
                return number
    raise AssertionError(f"marker {tag!r} not found in {relpath}")


def run_rule(rule_dir, variant, rule):
    tree = fixture_tree(rule_dir, variant)
    config = default_config(select=frozenset([rule]))
    report = check_paths([tree], config)
    return tree, report


class TestErrorContract:
    def test_violation_three_calls_deep(self):
        tree, report = run_rule(
            "error_contract", "violation", "error-contract"
        )
        entry = marked_line(
            tree, "src/repro/search/api.py", "entry"
        )
        by_anchor = {
            (os.path.basename(f.path), f.line): f
            for f in report.findings
        }
        finding = by_anchor[("api.py", entry)]
        assert "ValueError" in finding.message
        # The message names the whole propagation chain and the origin.
        assert "repro.search.planning.choose_plan" in finding.message
        assert "costs.py" in finding.message
        # The intermediate and origin helpers are public too, so the
        # contract flags them at their own def lines as well.
        helper = marked_line(tree, "src/repro/search/planning.py", "helper")
        origin = marked_line(tree, "src/repro/search/costs.py", "origin")
        assert ("planning.py", helper) in by_anchor
        assert ("costs.py", origin) in by_anchor

    def test_clean_twin(self):
        _, report = run_rule("error_contract", "clean", "error-contract")
        assert report.findings == (), render_text(report)

    def test_typed_raise_suppressed_by_hierarchy_not_noqa(self):
        # The clean twin raises SearchError (a ReproError subtype) and
        # absorbs OverflowError at the boundary — zero suppressions
        # should be involved in it passing.
        _, report = run_rule("error_contract", "clean", "error-contract")
        assert report.suppressed == ()


class TestMmapEscape:
    def test_public_unfrozen_return_is_flagged(self):
        tree, report = run_rule("mmap_escape", "violation", "mmap-escape")
        leak = marked_line(tree, "src/repro/store/reader.py", "leak")
        assert [
            (os.path.basename(f.path), f.line) for f in report.findings
        ] == [("reader.py", leak)]
        [finding] = report.findings
        assert "open_column" in finding.message
        assert "writeable" in finding.message

    def test_freezing_wrapper_is_clean(self):
        _, report = run_rule("mmap_escape", "clean", "mmap-escape")
        assert report.findings == (), render_text(report)


class TestInvalidationReachability:
    def test_helper_chain_without_bump_is_flagged(self):
        tree, report = run_rule(
            "invalidation_reachability",
            "violation",
            "invalidation-reachability",
        )
        bad = marked_line(tree, "src/repro/live/index.py", "bad")
        assert [
            (os.path.basename(f.path), f.line) for f in report.findings
        ] == [("index.py", bad)]
        [finding] = report.findings
        assert "add_segment" in finding.message

    def test_helper_chain_with_bump_is_clean(self):
        _, report = run_rule(
            "invalidation_reachability",
            "clean",
            "invalidation-reachability",
        )
        assert report.findings == (), render_text(report)


class TestBlockingInAsync:
    def test_direct_and_hidden_blocking_calls(self):
        tree, report = run_rule(
            "blocking_in_async", "violation", "blocking-in-async"
        )
        direct = marked_line(tree, "src/repro/live/gateway.py", "direct")
        indirect = marked_line(
            tree, "src/repro/live/gateway.py", "indirect"
        )
        anchors = [
            (os.path.basename(f.path), f.line) for f in report.findings
        ]
        assert anchors == [
            ("gateway.py", direct),
            ("gateway.py", indirect),
        ]
        hidden = next(
            f for f in report.findings if f.line == indirect
        )
        assert "drain_queue" in hidden.message
        assert "time.sleep" in hidden.message
        assert "workers.py" in hidden.message

    def test_async_awaiting_async_is_clean(self):
        _, report = run_rule(
            "blocking_in_async", "clean", "blocking-in-async"
        )
        assert report.findings == (), render_text(report)


class TestProgramSuppressions:
    def test_noqa_on_def_line_suppresses_program_finding(self, tmp_path):
        root = tmp_path / "src" / "repro" / "live"
        root.mkdir(parents=True)
        (root / "gateway.py").write_text(
            "import time\n"
            "\n"
            "\n"
            "async def tick():\n"
            "    time.sleep(1)  # repro: noqa[blocking-in-async] -- demo\n"
        )
        config = default_config(select=frozenset(["blocking-in-async"]))
        report = check_paths([str(tmp_path)], config)
        assert report.findings == ()
        assert [f.rule for f in report.suppressed] == ["blocking-in-async"]


class TestGraphResolution:
    def _graph(self, sources):
        """Build a graph from {path: source} without touching disk."""
        import ast

        from repro.analysis.imports import module_name_for_path

        modules = {}
        for path, source in sources.items():
            name = module_name_for_path(path)
            modules[name] = summarize_module(
                path, name, ast.parse(source)
            )
        return ProgramGraph(modules)

    def test_canonicalize_chases_package_reexports(self):
        graph = self._graph(
            {
                "src/repro/pkg/__init__.py": (
                    "from repro.pkg.impl import thing\n"
                ),
                "src/repro/pkg/impl.py": "def thing():\n    return 1\n",
            }
        )
        assert (
            graph.canonicalize("repro.pkg.thing")
            == "repro.pkg.impl.thing"
        )

    def test_exception_subtype_mixes_project_and_builtin(self):
        graph = self._graph(
            {
                "src/repro/errors.py": (
                    "class ReproError(Exception):\n    pass\n"
                    "class StoreError(ReproError, ValueError):\n"
                    "    pass\n"
                ),
            }
        )
        assert graph.is_exception_subtype(
            "repro.errors.StoreError", "repro.errors.ReproError"
        )
        assert graph.is_exception_subtype(
            "repro.errors.StoreError", "ValueError"
        )
        assert graph.is_exception_subtype("ValueError", "Exception")
        assert not graph.is_exception_subtype(
            "KeyboardInterrupt", "Exception"
        )
        assert not graph.is_exception_subtype(
            "repro.errors.ReproError", "repro.errors.StoreError"
        )

    def test_transparent_handler_does_not_absorb(self):
        graph = self._graph(
            {
                "src/repro/search/api.py": (
                    "def entry():\n"
                    "    try:\n"
                    "        helper()\n"
                    "    except ValueError:\n"
                    "        raise\n"
                    "def helper():\n"
                    "    raise ValueError('boom')\n"
                ),
            }
        )
        escapes = graph.escaping_exceptions()
        assert "ValueError" in escapes["repro.search.api.entry"]

    def test_absorbing_handler_stops_propagation(self):
        graph = self._graph(
            {
                "src/repro/search/api.py": (
                    "def entry():\n"
                    "    try:\n"
                    "        helper()\n"
                    "    except ValueError:\n"
                    "        return None\n"
                    "def helper():\n"
                    "    raise ValueError('boom')\n"
                ),
            }
        )
        escapes = graph.escaping_exceptions()
        assert escapes["repro.search.api.entry"] == {}

    def test_unresolved_super_delegation_counts_as_bump(self):
        graph = self._graph(
            {
                "src/repro/live/index.py": (
                    "class Index(dict):\n"
                    "    def __init__(self):\n"
                    "        self._version = 0\n"
                    "    def update_entry(self, key):\n"
                    "        super().update(key)\n"
                ),
            }
        )
        bumps = graph.param_bumps()
        assert "self" in bumps["repro.live.index.Index.update_entry"]


class TestStats:
    def test_report_carries_graph_stats(self, tmp_path):
        root = tmp_path / "src" / "repro" / "live"
        root.mkdir(parents=True)
        (root / "mod.py").write_text(
            "def a():\n    return b()\n\n\ndef b():\n    return 1\n"
        )
        report = check_paths([str(tmp_path)])
        assert report.stats is not None
        assert report.stats.modules == 1
        assert report.stats.functions == 2
        assert report.stats.call_edges == 1
        assert report.stats.cache_enabled is False


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
