"""Expected-frequency models (Eq. 7 baselines)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.temporal import (
    EWMABaseline,
    MovingAverageBaseline,
    RunningMeanBaseline,
    SeasonalBaseline,
    burstiness_series,
)


class TestRunningMean:
    def test_prior_before_data(self):
        model = RunningMeanBaseline(prior=2.5)
        assert model.expected(0) == 2.5

    def test_mean_of_history(self):
        model = RunningMeanBaseline()
        model.observe(0, 2.0)
        model.observe(1, 4.0)
        assert model.expected(2) == pytest.approx(3.0)

    def test_causality(self):
        """expected(i) must not include the observation at i."""
        model = RunningMeanBaseline()
        model.observe(0, 10.0)
        before = model.expected(1)
        model.observe(1, 100.0)
        assert before == pytest.approx(10.0)

    def test_prime_zeros(self):
        model = RunningMeanBaseline()
        model.prime_zeros(9)
        model.observe(9, 10.0)
        assert model.expected(10) == pytest.approx(1.0)

    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=30))
    def test_matches_numpy_mean(self, values):
        model = RunningMeanBaseline()
        for timestamp, value in enumerate(values):
            model.observe(timestamp, value)
        assert model.expected(len(values)) == pytest.approx(
            sum(values) / len(values)
        )


class TestMovingAverage:
    def test_window_limits_history(self):
        model = MovingAverageBaseline(window=2)
        for timestamp, value in enumerate([100.0, 1.0, 3.0]):
            model.observe(timestamp, value)
        assert model.expected(3) == pytest.approx(2.0)

    def test_prior(self):
        assert MovingAverageBaseline(window=3, prior=7.0).expected(0) == 7.0

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            MovingAverageBaseline(window=0)

    def test_partial_window(self):
        model = MovingAverageBaseline(window=5)
        model.observe(0, 4.0)
        assert model.expected(1) == pytest.approx(4.0)


class TestEWMA:
    def test_first_observation_becomes_mean(self):
        model = EWMABaseline(alpha=0.5)
        model.observe(0, 8.0)
        assert model.expected(1) == pytest.approx(8.0)

    def test_smoothing(self):
        model = EWMABaseline(alpha=0.5)
        model.observe(0, 0.0)
        model.observe(1, 10.0)
        assert model.expected(2) == pytest.approx(5.0)

    def test_alpha_bounds(self):
        with pytest.raises(ConfigurationError):
            EWMABaseline(alpha=0.0)
        with pytest.raises(ConfigurationError):
            EWMABaseline(alpha=1.5)

    def test_alpha_one_tracks_last(self):
        model = EWMABaseline(alpha=1.0)
        model.observe(0, 3.0)
        model.observe(1, 9.0)
        assert model.expected(2) == pytest.approx(9.0)


class TestSeasonal:
    def test_same_phase_history(self):
        model = SeasonalBaseline(period=7)
        model.observe(0, 10.0)   # phase 0
        model.observe(7, 20.0)   # phase 0
        model.observe(3, 99.0)   # phase 3 — must not affect phase 0
        assert model.expected(14) == pytest.approx(15.0)

    def test_fallback_used_for_unseen_phase(self):
        fallback = RunningMeanBaseline()
        model = SeasonalBaseline(period=7, fallback=fallback)
        model.observe(0, 10.0)
        # Phase 3 has no history; the fallback running mean covers it.
        assert model.expected(3) == pytest.approx(10.0)

    def test_no_fallback_zero(self):
        model = SeasonalBaseline(period=7)
        assert model.expected(5) == 0.0

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            SeasonalBaseline(period=0)


class TestBurstinessSeries:
    def test_default_model(self):
        series = burstiness_series([2.0, 2.0, 8.0])
        # t0: 2-0; t1: 2-2; t2: 8-2.
        assert series == [pytest.approx(2.0), pytest.approx(0.0), pytest.approx(6.0)]

    def test_custom_model(self):
        series = burstiness_series([4.0, 4.0], model=MovingAverageBaseline(window=1))
        assert series == [pytest.approx(4.0), pytest.approx(0.0)]

    @given(st.lists(st.floats(0, 50, allow_nan=False), max_size=30))
    def test_length_preserved(self, values):
        assert len(burstiness_series(values)) == len(values)

    @given(st.lists(st.floats(0, 50, allow_nan=False), min_size=1, max_size=30))
    def test_stationary_sequence_small_late_burstiness(self, values):
        """For a constant sequence, burstiness collapses to zero."""
        constant = [values[0]] * len(values)
        series = burstiness_series(constant)
        for value in series[1:]:
            assert value == pytest.approx(0.0, abs=1e-9)
