"""Ruzzo–Tompa GetMax: offline, online, and brute-force agreement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intervals import Interval
from repro.temporal import (
    OnlineMaxSegments,
    maximal_segments,
    maximal_segments_bruteforce,
)

# Half-integer values: exact float arithmetic, so tie-breaking between
# equal-score segments is deterministic and the brute-force comparison
# cannot be perturbed by summation order.
float_values = st.lists(
    st.integers(-20, 20).map(lambda v: v / 2.0),
    max_size=60,
)


class TestOfflineGetMax:
    def test_empty(self):
        assert maximal_segments([]) == []

    def test_all_negative(self):
        assert maximal_segments([-1.0, -2.0, -0.5]) == []

    def test_all_zero(self):
        assert maximal_segments([0.0, 0.0]) == []

    def test_single_positive(self):
        segments = maximal_segments([-1.0, 3.0, -1.0])
        assert len(segments) == 1
        assert segments[0].interval == Interval(1, 1)
        assert segments[0].score == pytest.approx(3.0)

    def test_ruzzo_tompa_worked_example(self):
        """Two separated positives stay separate when the dip is deep."""
        segments = maximal_segments([1.0, -2.0, 3.0])
        assert [s.interval for s in segments] == [Interval(0, 0), Interval(2, 2)]
        assert [s.score for s in segments] == [pytest.approx(1.0), pytest.approx(3.0)]

    def test_merge_across_shallow_dip(self):
        segments = maximal_segments([2.0, -1.0, 2.0])
        assert [s.interval for s in segments] == [Interval(0, 2)]
        assert segments[0].score == pytest.approx(3.0)

    def test_three_singletons(self):
        segments = maximal_segments([1.0, -1.0, 1.0, -1.0, 1.0])
        assert [s.interval for s in segments] == [
            Interval(0, 0),
            Interval(2, 2),
            Interval(4, 4),
        ]

    def test_left_dominant_kept_separate(self):
        segments = maximal_segments([2.0, -1.0, 1.0])
        assert [s.interval for s in segments] == [Interval(0, 0), Interval(2, 2)]

    @settings(max_examples=120)
    @given(float_values)
    def test_matches_bruteforce(self, values):
        fast = maximal_segments(values)
        slow = maximal_segments_bruteforce(values)
        assert [(s.interval, pytest.approx(s.score)) for s in fast] == [
            (s.interval, pytest.approx(s.score)) for s in slow
        ]

    @given(float_values)
    def test_segments_disjoint_and_ordered(self, values):
        segments = maximal_segments(values)
        for first, second in zip(segments, segments[1:]):
            assert first.end < second.start

    @given(float_values)
    def test_segments_have_positive_score(self, values):
        for segment in maximal_segments(values):
            assert segment.score > 0.0

    @given(float_values)
    def test_scores_equal_value_sums(self, values):
        for segment in maximal_segments(values):
            total = sum(values[segment.start : segment.end + 1])
            assert segment.score == pytest.approx(total)

    @given(float_values)
    def test_best_segment_is_max_subarray(self, values):
        """The top maximal segment realises the Kadane optimum."""
        segments = maximal_segments(values)
        best = max((s.score for s in segments), default=0.0)
        # Kadane reference.
        kadane, running = 0.0, 0.0
        for value in values:
            running = max(value, running + value)
            kadane = max(kadane, running)
        assert best == pytest.approx(max(kadane, 0.0))

    @given(float_values)
    def test_every_positive_value_covered(self, values):
        segments = maximal_segments(values)
        covered = set()
        for segment in segments:
            covered.update(range(segment.start, segment.end + 1))
        for index, value in enumerate(values):
            if value > 0.0:
                assert index in covered

    @given(float_values)
    def test_prefixes_and_suffixes_positive(self, values):
        """Trimming either end of a maximal segment loses score."""
        for segment in maximal_segments(values):
            prefix = 0.0
            for index in range(segment.start, segment.end):
                prefix += values[index]
                assert prefix > 0.0
            suffix = 0.0
            for index in range(segment.end, segment.start, -1):
                suffix += values[index]
                assert suffix > 0.0


class TestOnlineGetMax:
    def test_incremental_equals_offline(self):
        values = [1.0, -0.5, 2.0, -3.0, 4.0, -1.0, 0.5]
        online = OnlineMaxSegments()
        for index, value in enumerate(values):
            online.add(value)
            assert online.segments() == maximal_segments(values[: index + 1])

    @settings(max_examples=80)
    @given(float_values)
    def test_incremental_equals_offline_property(self, values):
        online = OnlineMaxSegments()
        online.extend(values)
        assert online.segments() == maximal_segments(values)

    @given(float_values)
    def test_total_is_sum(self, values):
        online = OnlineMaxSegments()
        online.extend(values)
        assert online.total == pytest.approx(sum(values))

    def test_len_counts_values(self):
        online = OnlineMaxSegments()
        online.extend([1.0, 2.0, -1.0])
        assert len(online) == 3

    def test_best(self):
        online = OnlineMaxSegments()
        online.extend([1.0, -5.0, 2.5])
        best = online.best()
        assert best is not None
        assert best.interval == Interval(2, 2)
        assert best.score == pytest.approx(2.5)

    def test_best_empty(self):
        assert OnlineMaxSegments().best() is None

    def test_candidate_count_bounded(self):
        online = OnlineMaxSegments()
        online.extend([1.0, -1.0] * 20)
        assert online.candidate_count <= 20


class TestSignedSequencesProperty:
    """Randomised signed sequences, biased to cross the negative-total
    pruning boundary of Algorithm 2 (a region sequence is dropped when
    its running total goes negative — the online tracker must keep its
    maximal segments exact right up to and across that point)."""

    def _random_sequences(self, seed, count):
        import random

        rng = random.Random(seed)
        for _ in range(count):
            length = rng.randint(0, 40)
            # Negative drift makes running totals repeatedly dip below
            # zero; half-integers keep float sums exact.
            values = [
                rng.randint(-24, 20) / 2.0 for _ in range(length)
            ]
            yield values

    def test_online_matches_bruteforce_on_signed_sequences(self):
        for values in self._random_sequences(seed=101, count=300):
            online = OnlineMaxSegments()
            online.extend(values)
            assert online.segments() == maximal_segments_bruteforce(values)

    def test_online_exact_at_every_prefix_across_pruning_boundary(self):
        for values in self._random_sequences(seed=202, count=60):
            online = OnlineMaxSegments()
            crossed = False
            for index, value in enumerate(values):
                online.add(value)
                prefix = values[: index + 1]
                if online.total < 0.0:
                    crossed = True  # the Algorithm-2 pruning point
                assert online.segments() == maximal_segments_bruteforce(
                    prefix
                )
                assert online.total == sum(prefix)
            # The generator's drift guarantees the boundary is exercised
            # somewhere in the batch; assert on long runs only.
            if len(values) >= 30:
                assert crossed or min(
                    sum(values[: i + 1]) for i in range(len(values))
                ) >= 0.0

    @settings(max_examples=80)
    @given(
        st.lists(
            st.integers(-30, 12).map(lambda v: v / 2.0),
            min_size=1,
            max_size=40,
        )
    )
    def test_negative_heavy_sequences_match_bruteforce(self, values):
        online = OnlineMaxSegments()
        online.extend(values)
        assert online.segments() == maximal_segments_bruteforce(values)
