"""Unit tests for the live ingestion + serving layer."""

import pytest

from repro.core.config import STLocalConfig
from repro.core.stlocal import STLocalTermTracker
from repro.errors import SearchError, StreamError
from repro.live import DeltaPostingList, LiveCollection, LiveIndex, LiveSearchEngine
from repro.pipeline import IncrementalFeeder
from repro.search import Posting, PostingList, exhaustive_topk, threshold_topk
from repro.spatial import Point
from repro.streams import Document


def make_live(timeline=16, n_streams=4):
    live = LiveCollection(timeline)
    for i in range(n_streams):
        live.add_stream(f"s{i}", Point(float(i * 10), 0.0))
    return live


class TestLiveCollection:
    def test_epoch_bumps_on_every_mutation(self):
        live = make_live()
        epoch = live.epoch
        live.ingest(Document(1, "s0", 0, ("a",)))
        assert live.epoch == epoch + 1
        live.advance_to(3)
        assert live.epoch == epoch + 2
        live.advance_to(3)  # no-op: already there
        assert live.epoch == epoch + 2

    def test_watermark_and_sealing(self):
        live = make_live()
        assert live.watermark == -1 and live.sealed == 0
        live.ingest(Document(1, "s0", 2, ("a",)))
        assert live.watermark == 2 and live.sealed == 2
        # Same-timestamp arrivals are fine: the snapshot is still open.
        live.ingest(Document(2, "s1", 2, ("a",)))
        live.ingest(Document(3, "s0", 5, ("b",)))
        # Now snapshot 2 is sealed.
        with pytest.raises(StreamError):
            live.ingest(Document(4, "s0", 2, ("a",)))

    def test_duplicate_doc_id_rejected(self):
        live = make_live()
        live.ingest(Document(1, "s0", 0, ("a",)))
        with pytest.raises(StreamError):
            live.ingest(Document(1, "s1", 0, ("a",)))

    def test_streams_frozen_after_first_ingest(self):
        live = make_live()
        live.ingest(Document(1, "s0", 0, ("a",)))
        with pytest.raises(StreamError):
            live.add_stream("late", Point(99.0, 99.0))

    def test_ingest_snapshot_checks_timestamps(self):
        live = make_live()
        docs = [Document(1, "s0", 3, ("a",)), Document(2, "s1", 4, ("a",))]
        with pytest.raises(StreamError):
            live.ingest_snapshot(3, docs)

    def test_empty_snapshot_advances_watermark(self):
        live = make_live()
        live.ingest_snapshot(0, [Document(1, "s0", 0, ("a",))])
        live.ingest_snapshot(4, [])
        assert live.watermark == 4

    def test_advance_validates_bounds(self):
        live = make_live(timeline=8)
        live.advance_to(5)
        with pytest.raises(StreamError):
            live.advance_to(3)
        with pytest.raises(StreamError):
            live.advance_to(8)

    def test_term_views_maintained_incrementally(self):
        live = make_live()
        live.ingest(Document(1, "s0", 1, ("a", "a", "b")))
        live.ingest(Document(2, "s1", 1, ("a",)))
        live.ingest(Document(3, "s0", 4, ("a",)))
        assert live.term_snapshots("a") == {
            1: {"s0": 2.0, "s1": 1.0},
            4: {"s0": 1.0},
        }
        assert live.term_version("a") == 3
        assert live.term_version("b") == 1
        assert live.term_version("zzz") == 0
        assert [d.doc_id for d in live.documents_with("a")] == [1, 2, 3]
        assert live.document(2).stream_id == "s1"
        with pytest.raises(StreamError):
            live.document("nope")

    def test_collection_accessors(self):
        live = make_live(timeline=16, n_streams=3)
        live.ingest(Document(1, "s0", 2, ("a", "b")))
        assert live.timeline == 16
        assert len(live) == 3
        assert live.document_count == 1
        assert live.vocabulary == {"a", "b"}
        assert set(live.locations()) == {"s0", "s1", "s2"}
        assert live.collection.document_count == 1

    def test_subscribe_hook_fires(self):
        live = make_live()
        seen = []
        live.subscribe(lambda doc: seen.append(doc.doc_id))
        live.ingest(Document(1, "s0", 0, ("a",)))
        live.ingest(Document(2, "s1", 0, ("b",)))
        assert seen == [1, 2]


def _as_pairs(plist):
    return [(p.doc_id, p.score) for p in plist]


class TestDeltaPostingList:
    def test_merge_order_matches_cold_rebuild(self):
        base_postings = [Posting("a", 3.0), Posting("b", 1.0), Posting("c", 2.0)]
        delta_postings = [Posting("d", 2.5), Posting("e", 0.5)]
        merged = DeltaPostingList(
            PostingList(base_postings), PostingList(delta_postings)
        )
        cold = PostingList(base_postings + delta_postings)
        assert _as_pairs(merged) == _as_pairs(cold)
        assert len(merged) == 5

    def test_sorted_access_lazy_and_past_end(self):
        merged = DeltaPostingList(
            PostingList([Posting("a", 1.0)]), PostingList([Posting("b", 2.0)])
        )
        assert merged.sorted_access(0).doc_id == "b"
        assert merged.sorted_access(1).doc_id == "a"
        assert merged.sorted_access(2) is None

    def test_random_access_covers_both_sides(self):
        merged = DeltaPostingList(
            PostingList([Posting("a", 1.0)]), PostingList([Posting("b", 2.0)])
        )
        assert merged.random_access("a") == 1.0
        assert merged.random_access("b") == 2.0
        assert merged.random_access("zzz") is None

    def test_duplicate_scores_keep_deterministic_order(self):
        # Equal scores: the tiebreak hash decides, exactly as in a
        # from-scratch posting list.
        postings = [Posting(f"doc{i}", 1.0) for i in range(6)]
        merged = DeltaPostingList(
            PostingList(postings[:3]), PostingList(postings[3:])
        )
        assert _as_pairs(merged) == _as_pairs(PostingList(postings))

    def test_top_and_compact(self):
        merged = DeltaPostingList(
            PostingList([Posting("a", 3.0), Posting("b", 1.0)]),
            PostingList([Posting("c", 2.0)]),
        )
        assert [p.doc_id for p in merged.top(2)] == ["a", "c"]
        compacted = merged.compact()
        assert isinstance(compacted, PostingList)
        assert _as_pairs(compacted) == [("a", 3.0), ("c", 2.0), ("b", 1.0)]


class TestLiveIndex:
    def test_delta_requires_base(self):
        index = LiveIndex()
        with pytest.raises(SearchError):
            index.append_delta("t", [Posting("a", 1.0)])

    def test_index_accessors(self):
        index = LiveIndex()
        index.set_base("t", [Posting("a", 1.0)])
        assert "t" in index and "u" not in index
        assert index.terms() == ["t"]
        assert len(index) == 1
        assert index.delta_size("t") == 0

    def test_get_without_delta_returns_plain_list(self):
        index = LiveIndex()
        index.set_base("t", [Posting("a", 1.0)])
        assert isinstance(index.get("t"), PostingList)
        assert index.get("zzz") is None

    def test_delta_merged_on_read(self):
        index = LiveIndex(compaction_threshold=100)
        index.set_base("t", [Posting("a", 3.0)])
        index.append_delta("t", [Posting("b", 4.0)])
        view = index.get("t")
        assert isinstance(view, DeltaPostingList)
        assert _as_pairs(view) == [("b", 4.0), ("a", 3.0)]
        assert index.delta_size("t") == 1

    def test_compaction_threshold(self):
        index = LiveIndex(compaction_threshold=3)
        index.set_base("t", [Posting("base", 10.0)])
        for i in range(3):
            index.append_delta("t", [Posting(i, float(i))])
        assert index.compactions == 1
        assert index.delta_size("t") == 0
        compacted = index.get("t")
        assert isinstance(compacted, PostingList)
        assert _as_pairs(compacted) == _as_pairs(
            PostingList([Posting("base", 10.0)] + [Posting(i, float(i)) for i in range(3)])
        )

    def test_duplicate_documents_rejected(self):
        index = LiveIndex()
        index.set_base("t", [Posting("a", 1.0)])
        with pytest.raises(SearchError):
            index.append_delta("t", [Posting("a", 2.0)])
        index.append_delta("t", [Posting("b", 2.0)])
        with pytest.raises(SearchError):
            index.append_delta("t", [Posting("b", 3.0)])

    def test_duplicate_within_batch_rejected_atomically(self):
        index = LiveIndex()
        index.set_base("t", [Posting("a", 1.0)])
        with pytest.raises(SearchError):
            index.append_delta("t", [Posting("b", 2.0), Posting("b", 3.0)])
        # The bad batch left no trace; its ids are appendable again.
        assert index.delta_size("t") == 0
        index.append_delta("t", [Posting("b", 2.0)])
        assert index.delta_size("t") == 1

    def test_duplicate_check_survives_compaction(self):
        index = LiveIndex(compaction_threshold=1)
        index.set_base("t", [])
        index.append_delta("t", [Posting("a", 1.0)])  # compacts into base
        with pytest.raises(SearchError):
            index.append_delta("t", [Posting("a", 2.0)])

    def test_set_base_drops_delta_and_invalidate(self):
        index = LiveIndex()
        index.set_base("t", [Posting("a", 1.0)])
        index.append_delta("t", [Posting("b", 2.0)])
        index.set_base("t", [Posting("c", 5.0)])
        assert _as_pairs(index.get("t")) == [("c", 5.0)]
        assert index.invalidate("t") is True
        assert index.invalidate("t") is False
        assert index.get("t") is None

    def test_threshold_topk_over_delta_merged_lists(self):
        """TA over a merged view must equal TA over a cold rebuild."""
        base_a = [Posting(i, float(i % 7)) for i in range(20)]
        delta_a = [Posting(100 + i, 6.5 - i) for i in range(8)]
        base_b = [Posting(i, float((i * 3) % 5)) for i in range(15)]
        delta_b = [Posting(100 + i, float(i % 4)) for i in range(8)]
        index = LiveIndex(compaction_threshold=1000)
        index.set_base("a", base_a)
        index.append_delta("a", delta_a)
        index.set_base("b", base_b)
        index.append_delta("b", delta_b)
        live_lists = [index.get("a"), index.get("b")]
        cold_lists = [
            PostingList(base_a + delta_a),
            PostingList(base_b + delta_b),
        ]
        for k in (1, 3, 10, 50):
            live_results, _ = threshold_topk(
                [index.get("a"), index.get("b")], k
            )
            cold_results, _ = threshold_topk(cold_lists, k)
            reference = exhaustive_topk(live_lists, k)
            as_pairs = lambda rs: [(r.doc_id, r.score) for r in rs]
            assert as_pairs(live_results) == as_pairs(cold_results)
            assert as_pairs(live_results) == as_pairs(reference)


class TestTrackerFork:
    def test_fork_is_independent(self):
        locations = {"s0": Point(0.0, 0.0), "s1": Point(5.0, 0.0)}
        tracker = STLocalTermTracker(locations, STLocalConfig(warmup=0))
        for t in range(6):
            tracker.process({"s0": 4.0 if 2 <= t <= 4 else 0.0})
        fork = tracker.fork()
        assert fork.clock == tracker.clock
        assert fork.patterns("x") == tracker.patterns("x")
        # Advancing the fork must not disturb the original...
        before = tracker.patterns("x")
        fork.process({"s1": 9.0})
        assert tracker.patterns("x") == before
        assert tracker.clock == 6 and fork.clock == 7
        # ...and replaying the same snapshot on the original converges.
        tracker.process({"s1": 9.0})
        assert tracker.patterns("x") == fork.patterns("x")

    def test_fork_of_pristine_tracker_can_fast_forward(self):
        tracker = STLocalTermTracker({"s0": Point(0.0, 0.0)})
        fork = tracker.fork()
        assert fork.pristine
        fork.fast_forward(5)
        assert fork.clock == 5 and tracker.clock == 0


class TestIncrementalFeeder:
    def test_advance_then_preview_equals_cold_replay(self):
        locations = {f"s{i}": Point(float(i), 0.0) for i in range(3)}
        snapshots = {
            3: {"s0": 5.0, "s1": 4.0},
            4: {"s0": 6.0},
            6: {"s2": 2.0},
        }
        feeder = IncrementalFeeder(locations, STLocalConfig(warmup=1))
        # Commit sealed prefix [0, 5), preview through 7.
        patterns = feeder.mine_term("t", snapshots, sealed=5, through=7)
        cold = STLocalTermTracker(dict(locations), STLocalConfig(warmup=1))
        for timestamp in range(7):
            cold.process(snapshots.get(timestamp, {}))
        assert patterns == cold.patterns("t")
        # The durable tracker stayed at its sealed checkpoint.
        assert feeder.tracker("t").clock == 5

    def test_preview_horizon_validated(self):
        feeder = IncrementalFeeder({"s0": Point(0.0, 0.0)})
        with pytest.raises(StreamError):
            feeder.mine_term("t", {}, sealed=5, through=4)

    def test_mine_term_without_open_snapshots(self):
        locations = {"s0": Point(0.0, 0.0), "s1": Point(4.0, 0.0)}
        snapshots = {2: {"s0": 6.0, "s1": 5.0}, 3: {"s0": 4.0}}
        feeder = IncrementalFeeder(locations, STLocalConfig(warmup=1))
        # sealed == through: read the durable tracker directly, no fork.
        patterns = feeder.mine_term("t", snapshots, sealed=5, through=5)
        cold = STLocalTermTracker(dict(locations), STLocalConfig(warmup=1))
        for timestamp in range(5):
            cold.process(snapshots.get(timestamp, {}))
        assert patterns == cold.patterns("t")
        assert feeder.terms() == ["t"]

    def test_quiet_prefix_fast_forwarded(self):
        feeder = IncrementalFeeder({"s0": Point(0.0, 0.0)})
        tracker = feeder.advance("t", {8: {"s0": 3.0}}, through=8)
        # Nothing was active before 8, so no snapshot was replayed.
        assert tracker.clock == 8
        assert tracker.pristine


class TestLiveSearchEngine:
    def _seed_burst(self, live, engine=None, doc_id_start=100):
        """Docs for 'boom' bursting on s0/s1 at t∈[6,8]."""
        doc_id = doc_id_start
        for t in range(10):
            docs = []
            if 6 <= t <= 8:
                for sid in ("s0", "s1"):
                    docs.append(Document(doc_id, sid, t, ("boom", "boom")))
                    doc_id += 1
            live.ingest_snapshot(t, docs)
        return doc_id

    def test_serves_burst_documents(self):
        live = make_live(timeline=16)
        engine = LiveSearchEngine(live, config=STLocalConfig(warmup=2))
        self._seed_burst(live)
        results = engine.search("boom", k=4)
        assert results
        for result in results:
            assert result.document.frequency("boom") > 0
            assert 6 <= result.document.timestamp <= 8

    def test_lru_cache_hits_within_epoch(self):
        live = make_live(timeline=16)
        engine = LiveSearchEngine(live, config=STLocalConfig(warmup=2))
        self._seed_burst(live)
        first = engine.search("boom", k=3)
        again = engine.search("boom", k=3)
        assert again == first
        assert engine.stats.cache_hits == 1

    def test_search_results_are_defensive_copies(self):
        """Regression: ``search`` caches live result objects — a caller
        mutating a returned list (or trying to rebind result fields)
        must never corrupt what later cache hits serve."""
        import dataclasses

        live = make_live(timeline=16)
        engine = LiveSearchEngine(live, config=STLocalConfig(warmup=2))
        self._seed_burst(live)
        first = engine.search("boom", k=3)
        reference = [(r.document.doc_id, r.score) for r in first]
        # The returned list is the caller's to destroy...
        first.reverse()
        first.append("garbage")
        first.clear()
        # ...and the result/document dataclasses are frozen, so fields
        # cannot be rebound in place either.
        second = engine.search("boom", k=3)
        assert engine.stats.cache_hits == 1
        with pytest.raises(dataclasses.FrozenInstanceError):
            second[0].score = -1.0
        with pytest.raises(dataclasses.FrozenInstanceError):
            second[0].document.timestamp = 0
        third = engine.search("boom", k=3)
        assert third is not second  # fresh list per call, shared elements
        assert [(r.document.doc_id, r.score) for r in third] == reference

    def test_cache_key_normalised_across_term_order_and_duplicates(self):
        live = make_live(timeline=16)
        engine = LiveSearchEngine(live, config=STLocalConfig(warmup=2))
        self._seed_burst(live)
        for offset in range(4):
            live.ingest(Document(500 + offset, "s0", 9, ("calm",)))
        reference = engine.search("boom calm", k=3)
        assert engine.stats.cache_misses == 1
        # Reordered and duplicated spellings hit the same cache entry.
        assert engine.search("calm boom", k=3) == reference
        assert engine.search("boom boom calm", k=3) == reference
        assert engine.stats.cache_hits == 2
        assert engine.stats.cache_misses == 1

    def test_duplicate_term_not_double_counted_live(self):
        live = make_live(timeline=16)
        engine = LiveSearchEngine(live, config=STLocalConfig(warmup=2))
        self._seed_burst(live)
        single = [
            (r.document.doc_id, r.score) for r in engine.search("boom", k=4)
        ]
        repeated = [
            (r.document.doc_id, r.score)
            for r in engine.search("boom boom", k=4)
        ]
        assert repeated == single

    def test_all_strategies_identical_live(self):
        live = make_live(timeline=16)
        engine = LiveSearchEngine(live, config=STLocalConfig(warmup=2))
        self._seed_burst(live)
        reference = [
            (r.document.doc_id, r.score)
            for r in engine.search("boom", k=4, strategy="ta")
        ]
        assert reference
        for strategy in ("auto", "blockmax", "scan"):
            # The result cache is strategy-agnostic (rankings are
            # byte-identical by contract), so it must be dropped for
            # each strategy to actually execute through the live path.
            engine._cache.clear()
            live_results = [
                (r.document.doc_id, r.score)
                for r in engine.search("boom", k=4, strategy=strategy)
            ]
            assert live_results == reference
        assert engine.stats.cache_misses == 4

    def test_unknown_strategy_rejected(self):
        live = make_live(timeline=16)
        with pytest.raises(SearchError):
            LiveSearchEngine(live, strategy="quantum")

    def test_unknown_strategy_rejected_even_when_cached(self):
        live = make_live(timeline=16)
        engine = LiveSearchEngine(live, config=STLocalConfig(warmup=2))
        self._seed_burst(live)
        engine.search("boom", k=3)  # primes the result cache
        with pytest.raises(SearchError):
            engine.search("boom", k=3, strategy="quantum")

    def test_query_compacts_pending_delta_to_columnar_base(self):
        from repro.columnar.postings import PostingArray

        live = make_live(timeline=16)
        engine = LiveSearchEngine(
            live, config=STLocalConfig(warmup=2), compaction_threshold=1000
        )
        self._seed_burst(live)
        engine.search("boom", k=3)
        # New documents join the delta; the next query compacts it so
        # the kernel reads a columnar base, with identical results.
        live.ingest(Document(999, "s0", 9, ("boom", "boom", "boom")))
        results = engine.search("boom", k=5)
        assert engine.index.delta_size("boom") == 0
        assert isinstance(engine.index.get("boom"), PostingArray)
        assert any(r.document.doc_id == 999 for r in results)

    def test_ingest_invalidates_result_cache(self):
        live = make_live(timeline=16)
        engine = LiveSearchEngine(live, config=STLocalConfig(warmup=2))
        self._seed_burst(live)
        engine.search("boom", k=3)
        live.ingest(Document(999, "s0", 9, ("boom", "boom", "boom")))
        engine.search("boom", k=3)
        assert engine.stats.cache_hits == 0
        assert engine.stats.cache_misses == 2

    def test_lru_cache_bounded(self):
        live = make_live(timeline=16)
        engine = LiveSearchEngine(
            live, config=STLocalConfig(warmup=2), cache_size=2
        )
        self._seed_burst(live)
        for query in ("boom", "one", "two", "three"):
            engine.search(query, k=3)
        assert engine.cached_queries == 2

    def test_unseen_term_served_and_synced_once(self):
        live = make_live(timeline=16)
        engine = LiveSearchEngine(live, config=STLocalConfig(warmup=2))
        self._seed_burst(live)
        assert engine.search("neverseen", k=3) == []
        engine.search("neverseen other", k=3)
        # Second query re-used the synced state for both terms.
        assert engine.stats.served_current >= 1

    def test_delta_path_when_patterns_stable(self):
        live = make_live(timeline=16)
        engine = LiveSearchEngine(live, config=STLocalConfig(warmup=8))
        # All activity inside the warm-up window: burstiness is forced
        # to zero, so the pattern set stays stably empty while the
        # term's documents keep arriving.
        live.ingest_snapshot(0, [Document(1, "s0", 0, ("calm",))])
        engine.search("calm", k=3)
        live.ingest_snapshot(1, [Document(2, "s0", 1, ("calm",))])
        engine.search("calm", k=3)
        assert engine.stats.rebuilds == 1  # the first touch
        assert engine.stats.delta_updates == 1

    def test_rebuild_on_pattern_shift(self):
        live = make_live(timeline=16)
        engine = LiveSearchEngine(live, config=STLocalConfig(warmup=2))
        doc_id = self._seed_burst(live)
        engine.search("boom", k=3)
        rebuilds = engine.stats.rebuilds
        # A fresh burst document shifts the term's live windows.
        live.ingest(Document(doc_id, "s0", 9, ("boom", "boom")))
        engine.search("boom", k=3)
        assert engine.stats.rebuilds > rebuilds

    def test_patterns_for_tracks_ingestion(self):
        live = make_live(timeline=16)
        engine = LiveSearchEngine(live, config=STLocalConfig(warmup=2))
        assert engine.patterns_for("boom") == []
        self._seed_burst(live)
        assert engine.patterns_for("boom")

    def test_engine_usable_before_streams_registered(self):
        live = LiveCollection(8)
        engine = LiveSearchEngine(live)
        assert engine.search("anything", k=1) == []
        live.add_stream("s0", Point(0.0, 0.0))
        live.ingest(Document(1, "s0", 0, ("anything",)))
        # The feeder rebinds to the final stream set.
        assert engine.search("anything", k=1) == []
        assert len(engine.feeder.locations) == 1

    def test_invalid_arguments(self):
        live = make_live()
        with pytest.raises(SearchError):
            LiveSearchEngine(live, cache_size=0)
        engine = LiveSearchEngine(live)
        with pytest.raises(SearchError):
            engine.search("   ")
        with pytest.raises(SearchError):
            LiveIndex(compaction_threshold=0)
