"""Segment-store format layer: manifest, checksums, crash safety."""

import json
import os

import numpy as np
import pytest

from repro.errors import StoreCorruptionError, StoreError
from repro.store import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    SegmentReader,
    SegmentWriter,
)
from repro.store.format import (
    check_save_target,
    decode_id_column,
    encode_id_column,
)


def write_minimal(path, payload=None):
    writer = SegmentWriter(path)
    writer.add_array("a/ints.npy", np.arange(5, dtype=np.int64))
    writer.add_array("a/floats.npy", np.linspace(0.0, 1.0, 7))
    writer.add_json("a/meta.json", payload if payload is not None else {"k": 1})
    writer.commit("index", {"note": "minimal"})
    return path


class TestWriter:
    def test_round_trip(self, tmp_path):
        path = write_minimal(str(tmp_path / "store"))
        reader = SegmentReader(path)
        assert reader.kind == "index"
        assert reader.metadata["note"] == "minimal"
        # Writers stamp the *lowest* format version that describes what
        # they wrote: plain raw columns are still v1 stores.
        assert reader.format_version == 1
        assert reader.library_version
        assert reader.array("a/ints.npy").tolist() == [0, 1, 2, 3, 4]
        assert reader.json("a/meta.json") == {"k": 1}

    def test_byte_payloads_stamp_current_version(self, tmp_path):
        writer = SegmentWriter(str(tmp_path / "store"))
        writer.add_array("a/payload.npy", np.arange(5, dtype=np.uint8))
        writer.commit("index", {})
        reader = SegmentReader(str(tmp_path / "store"))
        assert reader.format_version == FORMAT_VERSION
        assert reader.array("a/payload.npy").tolist() == [0, 1, 2, 3, 4]

    def test_unsigned_overflow_rejected(self, tmp_path):
        # Satellite regression: "u"-kind arrays used to funnel through
        # the <i8 storage dtype, silently wrapping values >= 2**63.
        writer = SegmentWriter(str(tmp_path / "store"))
        with pytest.raises(StoreError, match="2\\*\\*63"):
            writer.add_array(
                "a/big.npy", np.asarray([2**63], dtype=np.uint64)
            )

    def test_unsigned_in_range_widens(self, tmp_path):
        writer = SegmentWriter(str(tmp_path / "store"))
        writer.add_array(
            "a/ok.npy", np.asarray([0, 2**62], dtype=np.uint64)
        )
        writer.commit("index", {})
        reader = SegmentReader(str(tmp_path / "store"))
        assert reader.format_version == 1
        assert reader.array("a/ok.npy").tolist() == [0, 2**62]

    def test_refuses_nonempty_directory(self, tmp_path):
        target = tmp_path / "busy"
        target.mkdir()
        (target / "unrelated.txt").write_text("keep me")
        with pytest.raises(StoreError, match="not empty"):
            SegmentWriter(str(target))
        with pytest.raises(StoreError, match="not empty"):
            check_save_target(str(target))
        # The guard never touches the existing contents.
        assert (target / "unrelated.txt").read_text() == "keep me"

    def test_refuses_file_target(self, tmp_path):
        target = tmp_path / "file"
        target.write_text("x")
        with pytest.raises(StoreError, match="not a directory"):
            SegmentWriter(str(target))

    def test_duplicate_segment_name(self, tmp_path):
        writer = SegmentWriter(str(tmp_path / "store"))
        writer.add_json("x.json", {})
        with pytest.raises(StoreError, match="written twice"):
            writer.add_json("x.json", {})

    def test_uncommitted_store_is_invisible(self, tmp_path):
        """A crash before commit leaves no manifest — readers refuse it."""
        path = str(tmp_path / "store")
        writer = SegmentWriter(path)
        writer.add_array("a.npy", np.zeros(3))
        with pytest.raises(StoreError, match="interrupted"):
            SegmentReader(path)

    def test_little_endian_dtypes(self, tmp_path):
        path = str(tmp_path / "store")
        writer = SegmentWriter(path)
        writer.add_array("i32.npy", np.arange(3, dtype=np.int32))
        writer.add_array("f32.npy", np.zeros(3, dtype=np.float32))
        writer.commit("index")
        reader = SegmentReader(path)
        files = reader.files()
        assert files["i32.npy"]["dtype"] == "<i8"
        assert files["f32.npy"]["dtype"] == "<f8"


class TestReader:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(StoreError, match="does not exist"):
            SegmentReader(str(tmp_path / "nope"))

    def test_corrupted_manifest(self, tmp_path):
        path = write_minimal(str(tmp_path / "store"))
        with open(os.path.join(path, MANIFEST_NAME), "w") as handle:
            handle.write("{not json")
        with pytest.raises(StoreError, match="corrupted manifest"):
            SegmentReader(path)

    def test_wrong_format_name(self, tmp_path):
        path = write_minimal(str(tmp_path / "store"))
        manifest_path = os.path.join(path, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["format"] = "something-else"
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(StoreError, match=FORMAT_NAME):
            SegmentReader(path)

    def test_newer_format_rejected_with_versions(self, tmp_path):
        path = write_minimal(str(tmp_path / "store"))
        manifest_path = os.path.join(path, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["format_version"] = FORMAT_VERSION + 7
        manifest["library_version"] = "99.0.0"
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(StoreError) as excinfo:
            SegmentReader(path)
        message = str(excinfo.value)
        assert str(FORMAT_VERSION + 7) in message
        assert "99.0.0" in message  # which library wrote it
        assert "upgrade" in message

    def test_checksum_mismatch_names_file(self, tmp_path):
        path = write_minimal(str(tmp_path / "store"))
        target = os.path.join(path, "a", "floats.npy")
        with open(target, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([last[0] ^ 0x5A]))
        with pytest.raises(StoreError, match="a/floats.npy"):
            SegmentReader(path)
        # Opt-out still serves (trusted-store fast path).
        assert SegmentReader(path, verify=False).kind == "index"

    def test_checksum_mismatch_reports_expected_and_actual(self, tmp_path):
        """Corruption errors carry the full path plus both CRC/size
        values — the difference between a fixable report and a shrug."""
        path = write_minimal(str(tmp_path / "store"))
        target = os.path.join(path, "a", "floats.npy")
        with open(target, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([last[0] ^ 0x5A]))
        with open(os.path.join(path, MANIFEST_NAME)) as handle:
            entry = json.load(handle)["files"]["a/floats.npy"]
        with pytest.raises(StoreCorruptionError) as excinfo:
            SegmentReader(path)
        message = str(excinfo.value)
        assert "a/floats.npy" in message
        assert f"expected crc32 {entry['crc32']:#010x}" in message
        assert f"{entry['size']}B" in message
        assert "found 0x" in message
        assert "repro fsck" in message  # the recovery pointer

    def test_missing_file_error_is_typed_and_names_path(self, tmp_path):
        path = write_minimal(str(tmp_path / "store"))
        os.remove(os.path.join(path, "a", "ints.npy"))
        with pytest.raises(StoreCorruptionError, match="a/ints.npy"):
            SegmentReader(path)

    def test_interrupted_save_refusal_is_typed(self, tmp_path):
        """No manifest → typed StoreCorruptionError, never a half-load."""
        target = str(tmp_path / "half")
        writer = SegmentWriter(target)
        writer.add_array("a/ints.npy", np.arange(3, dtype=np.int64))
        # no commit: simulates a crash before the manifest rename
        with pytest.raises(StoreCorruptionError, match="interrupted"):
            SegmentReader(target)

    def test_missing_segment_file(self, tmp_path):
        path = write_minimal(str(tmp_path / "store"))
        os.remove(os.path.join(path, "a", "ints.npy"))
        with pytest.raises(StoreError, match="missing segment file"):
            SegmentReader(path)

    def test_unknown_segment_lookup(self, tmp_path):
        reader = SegmentReader(write_minimal(str(tmp_path / "store")))
        with pytest.raises(StoreError, match="no segment"):
            reader.array("missing.npy")
        with pytest.raises(StoreError, match="json"):
            reader.json("a/ints.npy")  # wrong segment type

    def test_mmap_zero_copy(self, tmp_path):
        # Arrays at/above the small-file threshold serve zero-copy from
        # the page cache; tiny ones take the single-read fast path.
        big = np.linspace(0.0, 1.0, SegmentReader.SMALL_ARRAY_BYTES // 8)
        writer = SegmentWriter(str(tmp_path / "store"))
        writer.add_array("a/big.npy", big)
        writer.add_array("a/small.npy", np.linspace(0.0, 1.0, 7))
        writer.commit("index", {})
        path = str(tmp_path / "store")
        mapped = SegmentReader(path, mmap=True).array("a/big.npy")
        assert isinstance(mapped, np.memmap)
        small = SegmentReader(path, mmap=True).array("a/small.npy")
        assert not isinstance(small, np.memmap)
        assert not small.flags.writeable
        assert small.tolist() == np.linspace(0.0, 1.0, 7).tolist()
        materialised = SegmentReader(path, mmap=False).array("a/big.npy")
        assert not isinstance(materialised, np.memmap)
        assert mapped.tolist() == materialised.tolist()


class TestIdColumns:
    def test_int_ids_take_binary_path(self):
        encoded = encode_id_column([3, 1, 2])
        assert encoded["kind"] == "int64"
        assert decode_id_column("int64", encoded["array"]) == [3, 1, 2]

    def test_mixed_and_string_ids_take_json_path(self):
        ids = ["a", 7, None, True, 2.5]
        encoded = encode_id_column(ids)
        assert encoded["kind"] == "json"
        round_tripped = json.loads(json.dumps(encoded["values"]))
        assert decode_id_column("json", round_tripped) == ids

    def test_oversized_int_falls_back_to_json(self):
        encoded = encode_id_column([2**70])
        assert encoded["kind"] == "json"

    def test_unserializable_id_rejected(self):
        with pytest.raises(StoreError, match="not persistable"):
            encode_id_column([("tuple", "id")])
