"""Read-only serving contract: arrays loaded from a store are frozen.

``SegmentReader.array`` marks everything it returns
``writeable=False`` — memory-mapped *and* eagerly-loaded copies alike —
so accidental in-place mutation of served state raises immediately
instead of silently corrupting the CRC-verified bytes (mmap) or
diverging from them (eager copy).
"""

import numpy as np
import pytest

from repro.columnar.postings import PostingArray
from repro.store import SegmentReader, SegmentWriter
from repro.store.segments import PostingSegment, encode_posting_lists


def write_store(tmp_path):
    path = str(tmp_path / "store")
    writer = SegmentWriter(path)
    writer.add_array("a/ints.npy", np.arange(5, dtype=np.int64))
    writer.commit("index")
    return path


def write_posting_store(tmp_path):
    path = str(tmp_path / "postings")
    writer = SegmentWriter(path)
    lists = {
        "storm": PostingArray(
            [3, 1, 2], np.asarray([0.5, 2.0, 1.25], dtype="<f8")
        )
    }
    encode_posting_lists(writer, "postings", lists)
    writer.commit("index")
    return path


class TestFrozenArrays:
    @pytest.mark.parametrize("mmap", [True, False])
    def test_loaded_array_refuses_writes(self, tmp_path, mmap):
        reader = SegmentReader(write_store(tmp_path), mmap=mmap)
        loaded = reader.array("a/ints.npy")
        assert loaded.flags.writeable is False
        with pytest.raises(ValueError, match="read-only"):
            loaded[0] = 99
        with pytest.raises(ValueError, match="read-only"):
            loaded += 1
        with pytest.raises(ValueError, match="read-only"):
            loaded.sort()
        # The frozen view still reads normally.
        assert loaded.tolist() == [0, 1, 2, 3, 4]

    @pytest.mark.parametrize("mmap", [True, False])
    def test_loaded_posting_column_refuses_writes(self, tmp_path, mmap):
        segment = PostingSegment(
            SegmentReader(write_posting_store(tmp_path), mmap=mmap),
            "postings",
        )
        _, scores, ties = segment.columns("storm")
        for column in (scores, ties):
            assert np.asarray(column).flags.writeable is False
            with pytest.raises(ValueError, match="read-only"):
                column[0] = 0

    def test_copy_is_mutable(self, tmp_path):
        reader = SegmentReader(write_store(tmp_path))
        scratch = reader.array("a/ints.npy").copy()
        scratch[0] = 99  # the documented escape hatch
        assert scratch.tolist() == [99, 1, 2, 3, 4]
