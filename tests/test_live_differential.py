"""Differential test harness: live incremental state == cold batch rebuild.

The live layer's correctness contract is a single sentence: after *any*
append-only ingestion schedule, every externally observable structure —
posting lists, mined pattern sets, top-k answers — must be identical to
throwing the live state away and rebuilding from scratch with the batch
stack.  These tests generate seeded random schedules (bursty and quiet
periods, empty snapshots, multi-document snapshots, interleaved
queries) and assert that equality after every batch, both with plain
seeded RNG schedules and with Hypothesis-generated ones.

"Identical" is exact: document ids, float scores and ordering are
compared with ``==``, no tolerance — both paths must perform the same
arithmetic in the same order.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    BatchMiner,
    BurstySearchEngine,
    Document,
    LiveCollection,
    LiveSearchEngine,
    Point,
    STLocal,
    SpatiotemporalCollection,
)
from repro.core.config import STLocalConfig

TIMELINE = 24
VOCABULARY = ("storm", "flood", "market", "quiet", "vote")


def make_streams(rng, n_streams):
    return {
        f"s{i}": Point(rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0))
        for i in range(n_streams)
    }


def random_snapshot(rng, streams, timestamp, next_doc_id, bursty):
    """A random batch of documents for one timestamp."""
    documents = []
    n_docs = rng.randint(0, 3) + (rng.randint(4, 7) if bursty else 0)
    burst_term = VOCABULARY[timestamp % len(VOCABULARY)]
    burst_streams = sorted(streams)[: max(2, len(streams) // 3)]
    for offset in range(n_docs):
        if bursty and offset >= 2:
            stream_id = rng.choice(burst_streams)
            terms = (burst_term, burst_term, rng.choice(VOCABULARY))
        else:
            stream_id = rng.choice(sorted(streams))
            terms = tuple(
                rng.choice(VOCABULARY) for _ in range(rng.randint(1, 3))
            )
        documents.append(
            Document(next_doc_id + offset, stream_id, timestamp, terms)
        )
    return documents


def cold_rebuild(live, config):
    """Throw the live state away: fresh collection, batch mine, static engine."""
    collection = SpatiotemporalCollection(live.timeline)
    for stream_id, point in live.locations().items():
        collection.add_stream(stream_id, point)
    for document in live.collection.documents():
        collection.add_document(document)
    mined = BatchMiner(stlocal=STLocal(config)).mine_regional(collection)
    engine = BurstySearchEngine(collection, mined)
    return mined, engine


def result_pairs(results):
    return [(r.document.doc_id, r.score) for r in results]


def posting_pairs(plist):
    return [(p.doc_id, p.score) for p in plist]


def assert_live_equals_cold(live, engine, config, queries, ks):
    """The oracle: every observable of the live stack == cold rebuild."""
    mined, cold_engine = cold_rebuild(live, config)

    # 1. Mined pattern sets, term by term (terms with none included).
    for term in VOCABULARY:
        assert engine.patterns_for(term) == mined.get(term, []), term

    # 2. Posting lists: the live index view (base + any pending delta)
    #    must read exactly like the static engine's freshly built list.
    for term in VOCABULARY:
        live_list = engine._term_list(term)
        cold_list = cold_engine._posting_list(term)
        assert posting_pairs(live_list) == posting_pairs(cold_list), term

    # 3. Top-k answers.
    for query in queries:
        for k in ks:
            assert result_pairs(engine.search(query, k)) == result_pairs(
                cold_engine.search(query, k)
            ), (query, k)


def run_schedule(seed, config, n_streams=8, check_every=5):
    rng = random.Random(seed)
    streams = make_streams(rng, n_streams)
    live = LiveCollection(TIMELINE)
    for stream_id, point in streams.items():
        live.add_stream(stream_id, point)
    engine = LiveSearchEngine(
        live, config=config, cache_size=16, compaction_threshold=4
    )
    queries = ["storm", "flood market", "quiet", "vote storm"]
    next_doc_id = 0
    checks = 0
    for timestamp in range(TIMELINE):
        if rng.random() < 0.15:
            live.advance_to(timestamp)  # an empty tick
            continue
        bursty = rng.random() < 0.35
        documents = random_snapshot(rng, streams, timestamp, next_doc_id, bursty)
        next_doc_id += len(documents)
        live.ingest_snapshot(timestamp, documents)
        # Serve mid-schedule (exercises caches + incremental syncs).
        engine.search(rng.choice(queries), k=rng.randint(1, 6))
        if timestamp % check_every == check_every - 1:
            assert_live_equals_cold(
                live, engine, config, queries, ks=(1, 3, 10)
            )
            checks += 1
    assert_live_equals_cold(live, engine, config, queries, ks=(1, 3, 10))
    assert checks >= 2
    return engine


class TestDifferentialSchedules:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_schedule_matches_cold_rebuild(self, seed):
        run_schedule(seed, STLocalConfig(warmup=2))

    def test_zero_warmup_config(self):
        run_schedule(97, STLocalConfig(warmup=0))

    def test_geometry_keyed_regions(self):
        run_schedule(31, STLocalConfig(warmup=2, key_by_geometry=True))

    def test_history_tracking_disabled(self):
        run_schedule(13, STLocalConfig(warmup=2, track_history=False))

    def test_compaction_is_invisible(self):
        # Aggressive compaction (threshold 1) and none (huge threshold)
        # must serve identical bytes.
        config = STLocalConfig(warmup=2)
        rng = random.Random(5)
        streams = make_streams(rng, 6)

        def build(threshold):
            inner_rng = random.Random(77)
            live = LiveCollection(TIMELINE)
            for stream_id, point in streams.items():
                live.add_stream(stream_id, point)
            engine = LiveSearchEngine(
                live, config=config, compaction_threshold=threshold
            )
            next_doc_id = 0
            answers = []
            for timestamp in range(0, TIMELINE, 2):
                documents = random_snapshot(
                    inner_rng, streams, timestamp, next_doc_id,
                    bursty=timestamp in (6, 8, 10),
                )
                next_doc_id += len(documents)
                live.ingest_snapshot(timestamp, documents)
                answers.append(result_pairs(engine.search("storm flood", 5)))
            return answers

        assert build(1) == build(10_000)


class TestHypothesisSchedules:
    """Property-based schedules: shapes the seeded generator may miss."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        schedule=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # timestamp gap
                st.lists(  # docs in the snapshot: (stream idx, term idx, reps)
                    st.tuples(
                        st.integers(min_value=0, max_value=4),
                        st.integers(min_value=0, max_value=4),
                        st.integers(min_value=1, max_value=3),
                    ),
                    max_size=5,
                ),
            ),
            min_size=1,
            max_size=8,
        ),
        warmup=st.integers(min_value=0, max_value=3),
    )
    def test_any_schedule_matches_cold_rebuild(self, schedule, warmup):
        config = STLocalConfig(warmup=warmup)
        live = LiveCollection(40)
        for i in range(5):
            live.add_stream(f"s{i}", Point(float(i * 7 % 20), float(i * 13 % 20)))
        engine = LiveSearchEngine(live, config=config)
        timestamp = 0
        next_doc_id = 0
        for gap, docs in schedule:
            timestamp = min(timestamp + gap, 39)
            batch = [
                Document(
                    next_doc_id + offset,
                    f"s{stream_idx}",
                    timestamp,
                    (VOCABULARY[term_idx],) * reps,
                )
                for offset, (stream_idx, term_idx, reps) in enumerate(docs)
            ]
            next_doc_id += len(batch)
            live.ingest_snapshot(timestamp, batch)
            engine.search("storm flood", k=3)
        assert_live_equals_cold(
            live,
            engine,
            config,
            queries=["storm", "flood market"],
            ks=(1, 5),
        )
