"""MWCI sweep vs brute force; clique enumeration; iterated removal."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.intervals import (
    Interval,
    WeightedInterval,
    common_segment,
    enumerate_maximal_cliques,
    iterated_max_cliques,
    max_weight_clique,
)


def brute_force_best_clique(items):
    """Exhaustive maximum-weight eligible subset (Eq. 2/3)."""
    best = None
    for r in range(1, len(items) + 1):
        for subset in itertools.combinations(items, r):
            if common_segment(w.interval for w in subset) is None:
                continue
            weight = sum(w.weight for w in subset)
            if best is None or weight > best:
                best = weight
    return best


weighted_st = st.builds(
    lambda start, length, weight: WeightedInterval(
        Interval(start, start + length), weight, None
    ),
    st.integers(0, 20),
    st.integers(0, 8),
    st.floats(0.01, 5.0, allow_nan=False),
)


class TestMaxWeightClique:
    def test_empty(self):
        assert max_weight_clique([]) is None

    def test_all_nonpositive(self):
        items = [WeightedInterval(Interval(0, 2), 0.0), WeightedInterval(Interval(1, 3), -1.0)]
        assert max_weight_clique(items) is None

    def test_single(self):
        result = max_weight_clique([WeightedInterval(Interval(2, 5), 0.7, "x")])
        assert result is not None
        assert result.weight == pytest.approx(0.7)
        assert result.segment == Interval(2, 5)

    def test_paper_figure2_style(self):
        """Four streams; the best subset combines the aligned bursts."""
        items = [
            WeightedInterval(Interval(0, 10), 0.8, "D1"),   # I1
            WeightedInterval(Interval(14, 20), 0.5, "D1"),  # I2
            WeightedInterval(Interval(2, 9), 0.6, "D2"),    # I3
            WeightedInterval(Interval(15, 22), 0.4, "D2"),  # I4
            WeightedInterval(Interval(4, 12), 0.3, "D3"),   # I5
            WeightedInterval(Interval(5, 8), 0.4, "D4"),    # I6
            WeightedInterval(Interval(16, 19), 0.2, "D4"),  # I7
        ]
        result = max_weight_clique(items)
        assert result is not None
        streams = sorted(w.stream_id for w in result.members)
        assert streams == ["D1", "D2", "D3", "D4"]
        assert result.weight == pytest.approx(0.8 + 0.6 + 0.3 + 0.4)
        # Common segment [5, 8]: the intersection of the four intervals.
        assert result.segment == Interval(5, 8)

    def test_touching_intervals_form_clique(self):
        items = [
            WeightedInterval(Interval(0, 5), 1.0),
            WeightedInterval(Interval(5, 9), 1.0),
        ]
        result = max_weight_clique(items)
        assert result.weight == pytest.approx(2.0)
        assert result.segment == Interval(5, 5)

    def test_members_all_cover_segment(self):
        items = [
            WeightedInterval(Interval(0, 3), 0.5),
            WeightedInterval(Interval(2, 6), 0.5),
            WeightedInterval(Interval(5, 9), 0.6),
        ]
        result = max_weight_clique(items)
        for member in result.members:
            assert member.interval.contains_interval(result.segment)

    @settings(max_examples=60)
    @given(st.lists(weighted_st, min_size=1, max_size=9))
    def test_matches_bruteforce_weight(self, items):
        sweep = max_weight_clique(items)
        brute = brute_force_best_clique(items)
        assert sweep is not None and brute is not None
        assert sweep.weight == pytest.approx(brute)

    @settings(max_examples=60)
    @given(st.lists(weighted_st, min_size=1, max_size=12))
    def test_result_is_eligible_subset(self, items):
        result = max_weight_clique(items)
        assert result is not None
        assert common_segment(w.interval for w in result.members) is not None


class TestIteratedCliques:
    def test_disjoint_families_found_separately(self):
        items = [
            WeightedInterval(Interval(0, 3), 1.0, "a"),
            WeightedInterval(Interval(1, 4), 1.0, "b"),
            WeightedInterval(Interval(10, 13), 0.9, "c"),
            WeightedInterval(Interval(11, 14), 0.9, "d"),
        ]
        cliques = iterated_max_cliques(items)
        assert len(cliques) == 2
        assert cliques[0].weight == pytest.approx(2.0)
        assert cliques[1].weight == pytest.approx(1.8)

    def test_weights_non_increasing(self):
        items = [
            WeightedInterval(Interval(i, i + 3), 1.0 / (i + 1)) for i in range(0, 30, 5)
        ]
        cliques = iterated_max_cliques(items)
        weights = [c.weight for c in cliques]
        assert weights == sorted(weights, reverse=True)

    def test_max_patterns_cap(self):
        items = [
            WeightedInterval(Interval(i, i + 1), 1.0) for i in range(0, 40, 10)
        ]
        assert len(iterated_max_cliques(items, max_patterns=2)) == 2

    def test_no_interval_reused(self):
        items = [
            WeightedInterval(Interval(0, 10), 1.0, "a"),
            WeightedInterval(Interval(5, 15), 1.0, "b"),
            WeightedInterval(Interval(12, 20), 1.0, "c"),
        ]
        cliques = iterated_max_cliques(items)
        used = []
        for clique in cliques:
            used.extend(id(m) for m in clique.members)
        total_members = sum(len(c) for c in cliques)
        assert total_members <= len(items)

    @settings(max_examples=40)
    @given(st.lists(weighted_st, min_size=0, max_size=10))
    def test_member_count_conserved(self, items):
        cliques = iterated_max_cliques(items)
        assert sum(len(c) for c in cliques) <= len(items)


class TestEnumerateMaximalCliques:
    def test_empty(self):
        assert enumerate_maximal_cliques([]) == []

    def test_chain_of_three(self):
        items = [
            WeightedInterval(Interval(0, 4), 1.0, "a"),
            WeightedInterval(Interval(3, 7), 1.0, "b"),
            WeightedInterval(Interval(6, 9), 1.0, "c"),
        ]
        cliques = enumerate_maximal_cliques(items)
        member_sets = [
            frozenset(m.stream_id for m in c.members) for c in cliques
        ]
        assert frozenset({"a", "b"}) in member_sets
        assert frozenset({"b", "c"}) in member_sets
        assert len(cliques) == 2

    def test_single_interval(self):
        cliques = enumerate_maximal_cliques(
            [WeightedInterval(Interval(1, 2), 0.4, "a")]
        )
        assert len(cliques) == 1
        assert cliques[0].weight == pytest.approx(0.4)

    @settings(max_examples=40)
    @given(st.lists(weighted_st, min_size=1, max_size=10))
    def test_contains_the_maximum_weight_clique(self, items):
        """The best clique from the sweep appears among the maximal ones."""
        best = max_weight_clique(items, positive_only=False)
        cliques = enumerate_maximal_cliques(items)
        assert cliques, "non-empty input must yield at least one clique"
        best_enumerated = max(c.weight for c in cliques)
        assert best_enumerated >= best.weight - 1e-9

    @settings(max_examples=40)
    @given(st.lists(weighted_st, min_size=1, max_size=10))
    def test_each_clique_is_eligible_and_maximal(self, items):
        cliques = enumerate_maximal_cliques(items)
        for clique in cliques:
            segment = common_segment(m.interval for m in clique.members)
            assert segment is not None
            # No outside interval can be added while keeping eligibility.
            member_ids = {id(m) for m in clique.members}
            for witem in items:
                if id(witem) in member_ids:
                    continue
                extended = list(clique.members) + [witem]
                assert common_segment(w.interval for w in extended) is None
