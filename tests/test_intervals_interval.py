"""Unit + property tests for repro.intervals.interval."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EmptyInputError, InvalidIntervalError
from repro.intervals.interval import Interval, common_segment, pairwise_intersecting

intervals_st = st.builds(
    lambda a, b: Interval(min(a, b), max(a, b)),
    st.integers(-50, 50),
    st.integers(-50, 50),
)


class TestIntervalBasics:
    def test_length_single(self):
        assert Interval(3, 3).length == 1

    def test_length_multi(self):
        assert Interval(2, 5).length == 4

    def test_len_dunder(self):
        assert len(Interval(0, 9)) == 10

    def test_inverted_raises(self):
        with pytest.raises(InvalidIntervalError):
            Interval(5, 4)

    def test_contains_timestamp(self):
        interval = Interval(2, 4)
        assert 2 in interval
        assert 4 in interval
        assert 5 not in interval
        assert 1 not in interval

    def test_iteration(self):
        assert list(Interval(3, 6)) == [3, 4, 5, 6]

    def test_ordering_lexicographic(self):
        assert Interval(1, 5) < Interval(2, 3)
        assert Interval(1, 2) < Interval(1, 5)

    def test_equality_and_hash(self):
        assert Interval(1, 2) == Interval(1, 2)
        assert hash(Interval(1, 2)) == hash(Interval(1, 2))
        assert Interval(1, 2) != Interval(1, 3)

    def test_shift(self):
        assert Interval(1, 3).shift(10) == Interval(11, 13)

    def test_shift_negative(self):
        assert Interval(5, 8).shift(-5) == Interval(0, 3)

    def test_expand(self):
        assert Interval(4, 5).expand(2) == Interval(2, 7)

    def test_expand_shrink_invalid(self):
        with pytest.raises(InvalidIntervalError):
            Interval(4, 5).expand(-2)


class TestIntersection:
    def test_overlapping(self):
        assert Interval(1, 5).intersection(Interval(3, 8)) == Interval(3, 5)

    def test_touching_at_point(self):
        # Closed intervals sharing exactly one timestamp intersect.
        assert Interval(1, 3).intersection(Interval(3, 6)) == Interval(3, 3)

    def test_disjoint(self):
        assert Interval(1, 2).intersection(Interval(4, 6)) is None

    def test_adjacent_not_intersecting(self):
        assert not Interval(1, 2).intersects(Interval(3, 4))

    def test_containment(self):
        assert Interval(1, 9).contains_interval(Interval(3, 4))
        assert not Interval(3, 4).contains_interval(Interval(1, 9))
        assert Interval(3, 4).contains_interval(Interval(3, 4))

    def test_union_span_disjoint(self):
        assert Interval(1, 2).union_span(Interval(5, 6)) == Interval(1, 6)

    @given(intervals_st, intervals_st)
    def test_intersection_symmetric(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(intervals_st, intervals_st)
    def test_intersection_within_both(self, a, b):
        overlap = a.intersection(b)
        if overlap is not None:
            assert a.contains_interval(overlap)
            assert b.contains_interval(overlap)

    @given(intervals_st)
    def test_self_intersection_identity(self, a):
        assert a.intersection(a) == a


class TestJaccard:
    def test_identical(self):
        assert Interval(1, 4).jaccard(Interval(1, 4)) == 1.0

    def test_disjoint(self):
        assert Interval(1, 2).jaccard(Interval(5, 6)) == 0.0

    def test_half_overlap(self):
        # [0,1] vs [1,2]: overlap 1, union 3.
        assert Interval(0, 1).jaccard(Interval(1, 2)) == pytest.approx(1 / 3)

    @given(intervals_st, intervals_st)
    def test_jaccard_bounds_and_symmetry(self, a, b):
        j = a.jaccard(b)
        assert 0.0 <= j <= 1.0
        assert j == pytest.approx(b.jaccard(a))


class TestCommonSegment:
    def test_empty_input(self):
        with pytest.raises(EmptyInputError):
            common_segment([])

    def test_single(self):
        assert common_segment([Interval(1, 5)]) == Interval(1, 5)

    def test_three_way(self):
        segs = [Interval(0, 10), Interval(4, 20), Interval(6, 8)]
        assert common_segment(segs) == Interval(6, 8)

    def test_no_common(self):
        assert common_segment([Interval(0, 2), Interval(5, 9)]) is None

    @given(st.lists(intervals_st, min_size=1, max_size=8))
    def test_helly_property(self, items):
        """1-D Helly: all pairwise intersect iff a common point exists."""
        pairwise = all(
            a.intersects(b) for i, a in enumerate(items) for b in items[i + 1 :]
        )
        assert pairwise_intersecting(items) == pairwise

    @given(st.lists(intervals_st, min_size=1, max_size=8))
    def test_common_segment_in_all(self, items):
        segment = common_segment(items)
        if segment is not None:
            for item in items:
                assert item.contains_interval(segment)
