"""Incremental summary-cache tests: correctness before speed.

The contract: a warm cached run must produce findings *identical* to a
cold uncached run, for any sequence of file edits — the cache may only
ever change how much work a run does, never its answer.  These tests
drive :func:`repro.analysis.check_paths` with a cache directory over a
copied fixture tree, edit files between runs, and diff the reports.
"""

import os
import shutil

import pytest

from repro.analysis import check_paths, default_config
from repro.analysis.cache import SummaryCache, compute_fingerprint

FIXTURE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "fixtures",
    "analysis",
    "program",
    "error_contract",
    "violation",
)


@pytest.fixture
def tree(tmp_path):
    target = tmp_path / "tree"
    shutil.copytree(FIXTURE, target)
    return target


def run(tree, cache_dir=None, select=frozenset(["error-contract"])):
    config = default_config(select=select)
    return check_paths([str(tree)], config, cache_dir=cache_dir)


class TestCacheCorrectness:
    def test_warm_run_is_identical_and_all_hits(self, tree, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run(tree, cache_dir)
        assert cold.stats.cache_enabled
        assert cold.stats.cache_hits == 0
        assert cold.stats.cache_misses == cold.checked_files > 0
        warm = run(tree, cache_dir)
        assert warm.stats.cache_hits == warm.checked_files
        assert warm.stats.cache_misses == 0
        assert warm.findings == cold.findings
        assert warm.suppressed == cold.suppressed

    def test_single_edit_recomputes_only_that_file(self, tree, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run(tree, cache_dir)  # populate
        costs = tree / "src" / "repro" / "search" / "costs.py"
        costs.write_text(
            '"""Edited: now raises the typed error."""\n'
            "\n"
            "from repro.errors import SearchError\n"
            "\n"
            "\n"
            "def estimate_cost(query):\n"
            "    if not query:\n"
            "        raise SearchError('empty query')\n"
            "    return len(query)\n"
        )
        edited = run(tree, cache_dir)
        assert edited.stats.cache_misses == 1
        assert edited.stats.cache_hits == edited.checked_files - 1
        # Findings must match a from-scratch run of the edited tree.
        fresh = run(tree, cache_dir=None)
        assert edited.findings == fresh.findings
        # And the edit flipped the tree clean: the fixed raise site no
        # longer leaks a builtin through the (unchanged) entry point.
        assert edited.findings == ()

    def test_config_change_discards_cache(self, tree, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run(tree, cache_dir)
        switched = run(
            tree, cache_dir, select=frozenset(["blocking-in-async"])
        )
        assert switched.stats.cache_hits == 0
        assert switched.stats.cache_misses == switched.checked_files

    def test_cache_file_round_trip(self, tree, tmp_path):
        cache_dir = str(tmp_path / "cache")
        config = default_config(select=frozenset(["error-contract"]))
        fingerprint = compute_fingerprint(config)
        cache = SummaryCache(cache_dir, fingerprint)
        cache.put("a/b.py", "digest", {"summary": None, "x": [1, 2]})
        cache.save()
        reloaded = SummaryCache(cache_dir, fingerprint)
        entry = reloaded.get("a/b.py", "digest")
        assert entry is not None and entry["x"] == [1, 2]
        assert reloaded.get("a/b.py", "other-digest") is None
        assert SummaryCache(cache_dir, "stale").get("a/b.py", "digest") is None

    def test_corrupt_cache_degrades_to_cold_run(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "summaries.json").write_text("{not json")
        report = run(tree, str(cache_dir))
        assert report.stats.cache_misses == report.checked_files
        # And the bad file is replaced by a valid one for the next run.
        warm = run(tree, str(cache_dir))
        assert warm.stats.cache_hits == warm.checked_files


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
