"""The Base baseline of Section 6.2.2."""

import pytest

from repro.core import BaseConfig, BaseDetector
from repro.errors import ConfigurationError
from repro.intervals import Interval
from repro.spatial import Point
from repro.streams import Document, SpatiotemporalCollection


def build_collection(bursts, timeline=20, n_streams=4):
    """bursts: list of (stream, start, end) for term 'x' at rate 4/step."""
    coll = SpatiotemporalCollection(timeline=timeline)
    for i in range(n_streams):
        coll.add_stream(f"s{i}", Point(float(i), 0.0))
    doc_id = 0
    for sid, start, end in bursts:
        for t in range(start, end + 1):
            for _ in range(4):
                coll.add_document(Document(doc_id, sid, t, ("x",)))
                doc_id += 1
    return coll


class TestBaseConfig:
    def test_invalid_gap(self):
        with pytest.raises(ConfigurationError):
            BaseConfig(max_gap=-1)

    def test_invalid_delta(self):
        with pytest.raises(ConfigurationError):
            BaseConfig(jaccard_threshold=0.0)
        with pytest.raises(ConfigurationError):
            BaseConfig(jaccard_threshold=1.5)


class TestStreamIntervals:
    def test_binarised_runs(self):
        coll = build_collection([("s0", 5, 8)])
        intervals = BaseDetector().stream_intervals(coll, "x")
        assert "s0" in intervals
        runs = intervals["s0"]
        assert any(run.start == 5 for run in runs)

    def test_gap_filling(self):
        # Bursts at 3-4 and 7-8: interior gap of 2 zeros.
        coll = build_collection([("s0", 3, 4), ("s0", 7, 8)])
        wide = BaseDetector(BaseConfig(max_gap=4)).stream_intervals(coll, "x")
        narrow = BaseDetector(BaseConfig(max_gap=1)).stream_intervals(coll, "x")
        assert len(wide["s0"]) < len(narrow["s0"]) or (
            wide["s0"][0].length > narrow["s0"][0].length
        )

    def test_absent_term(self):
        coll = build_collection([("s0", 5, 8)])
        assert BaseDetector().stream_intervals(coll, "zzz") == {}


class TestBasePatterns:
    def test_aligned_bursts_merge(self):
        coll = build_collection(
            [("s0", 5, 9), ("s1", 5, 9), ("s2", 6, 9)]
        )
        pattern = BaseDetector(BaseConfig(jaccard_threshold=0.3)).top_pattern(
            coll, "x"
        )
        assert pattern is not None
        assert {"s0", "s1", "s2"} <= set(pattern.streams)

    def test_merged_interval_is_intersection(self):
        coll = build_collection([("s0", 5, 10), ("s1", 7, 10)])
        detector = BaseDetector(BaseConfig(jaccard_threshold=0.3, seed=1))
        pattern = detector.top_pattern(coll, "x")
        # The pooled interval shrinks toward the overlap of the merged runs.
        assert pattern.timeframe.start >= 5
        assert pattern.timeframe.end <= 10

    def test_disjoint_bursts_stay_separate(self):
        coll = build_collection([("s0", 2, 4), ("s1", 14, 16)])
        patterns = BaseDetector().patterns_for_term(coll, "x")
        assert len(patterns) >= 2

    def test_deterministic_given_seed(self):
        coll = build_collection([("s0", 5, 9), ("s1", 6, 9), ("s2", 2, 3)])
        a = BaseDetector(BaseConfig(seed=42)).patterns_for_term(coll, "x")
        b = BaseDetector(BaseConfig(seed=42)).patterns_for_term(coll, "x")
        assert [(p.streams, p.timeframe) for p in a] == [
            (p.streams, p.timeframe) for p in b
        ]

    def test_scores_sorted(self):
        coll = build_collection([("s0", 5, 9), ("s1", 5, 9), ("s2", 15, 16)])
        patterns = BaseDetector().patterns_for_term(coll, "x")
        scores = [p.score for p in patterns]
        assert scores == sorted(scores, reverse=True)

    def test_empty_for_absent_term(self):
        coll = build_collection([("s0", 5, 9)])
        assert BaseDetector().patterns_for_term(coll, "none") == []
        assert BaseDetector().top_pattern(coll, "none") is None
