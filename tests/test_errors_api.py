"""Error hierarchy and public-API surface."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "InvalidIntervalError",
            "OverlapError",
            "EmptyInputError",
            "InvalidGeometryError",
            "StreamError",
            "UnknownTermError",
            "ConfigurationError",
            "SearchError",
            "GenerationError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_value_error_compatibility(self):
        """Callers can catch most failures as plain ValueErrors too."""
        assert issubclass(errors.InvalidIntervalError, ValueError)
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_unknown_term_is_key_error(self):
        assert issubclass(errors.UnknownTermError, KeyError)

    def test_single_catch_all(self):
        from repro.intervals import Interval

        with pytest.raises(errors.ReproError):
            Interval(5, 1)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_classes_importable_from_root(self):
        assert repro.STComb is not None
        assert repro.STLocal is not None
        assert repro.BurstySearchEngine is not None
        assert repro.SpatiotemporalCollection is not None

    def test_subpackage_all_exports_resolve(self):
        import repro.core
        import repro.datagen
        import repro.eval
        import repro.intervals
        import repro.search
        import repro.spatial
        import repro.streams
        import repro.temporal

        for module in (
            repro.core,
            repro.datagen,
            repro.eval,
            repro.intervals,
            repro.search,
            repro.spatial,
            repro.streams,
            repro.temporal,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)
