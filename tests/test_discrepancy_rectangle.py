"""Max-weight rectangle: exact grid/Kadane vs brute force; R-Bursty."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import r_bursty
from repro.spatial import (
    Point,
    WeightedPoint,
    max_weight_rectangle,
    max_weight_rectangle_bruteforce,
)

# Integer grid coordinates + half-integer weights: exact arithmetic.
weighted_points = st.lists(
    st.builds(
        lambda x, y, w: WeightedPoint(Point(float(x), float(y)), w / 2.0),
        st.integers(0, 8),
        st.integers(0, 8),
        st.integers(-10, 10),
    ),
    max_size=14,
)


class TestMaxWeightRectangle:
    def test_empty(self):
        assert max_weight_rectangle([]) is None

    def test_all_negative(self):
        pts = [WeightedPoint(Point(0, 0), -1.0), WeightedPoint(Point(1, 1), -2.0)]
        assert max_weight_rectangle(pts) is None

    def test_all_zero(self):
        assert max_weight_rectangle([WeightedPoint(Point(0, 0), 0.0)]) is None

    def test_single_positive(self):
        result = max_weight_rectangle([WeightedPoint(Point(3, 4), 2.5, "s")])
        assert result is not None
        assert result.score == pytest.approx(2.5)
        assert result.rectangle.contains_point(Point(3, 4))
        assert [wp.stream_id for wp in result.members] == ["s"]

    def test_negative_point_excluded(self):
        pts = [
            WeightedPoint(Point(0, 0), 3.0, "a"),
            WeightedPoint(Point(1, 0), -5.0, "b"),
            WeightedPoint(Point(2, 0), 3.0, "c"),
        ]
        result = max_weight_rectangle(pts)
        # Including b costs more than it gains: pick one side.
        assert result.score == pytest.approx(3.0)

    def test_negative_point_worth_bridging(self):
        pts = [
            WeightedPoint(Point(0, 0), 3.0, "a"),
            WeightedPoint(Point(1, 0), -1.0, "b"),
            WeightedPoint(Point(2, 0), 3.0, "c"),
        ]
        result = max_weight_rectangle(pts)
        assert result.score == pytest.approx(5.0)
        assert len(result.members) == 3

    def test_stacked_points_same_cell(self):
        pts = [
            WeightedPoint(Point(0, 0), 1.0, "a"),
            WeightedPoint(Point(0, 0), 2.0, "b"),
        ]
        result = max_weight_rectangle(pts)
        assert result.score == pytest.approx(3.0)
        assert len(result.members) == 2

    def test_rectangle_is_tight(self):
        pts = [
            WeightedPoint(Point(1, 1), 1.0),
            WeightedPoint(Point(4, 5), 1.0),
            WeightedPoint(Point(9, 9), -7.0),
        ]
        result = max_weight_rectangle(pts)
        assert result.rectangle.min_x == 1.0
        assert result.rectangle.max_x == 4.0
        assert result.rectangle.min_y == 1.0
        assert result.rectangle.max_y == 5.0

    @settings(max_examples=120)
    @given(weighted_points)
    def test_matches_bruteforce_score(self, pts):
        fast = max_weight_rectangle(pts)
        slow = max_weight_rectangle_bruteforce(pts)
        if slow is None:
            assert fast is None
        else:
            assert fast is not None
            assert fast.score == pytest.approx(slow.score)

    @settings(max_examples=80)
    @given(weighted_points)
    def test_score_equals_member_sum(self, pts):
        result = max_weight_rectangle(pts)
        if result is not None:
            assert result.score == pytest.approx(
                sum(wp.weight for wp in result.members)
            )

    @settings(max_examples=80)
    @given(weighted_points)
    def test_members_exactly_the_nonzero_inside(self, pts):
        result = max_weight_rectangle(pts)
        if result is not None:
            expected = [
                wp
                for wp in pts
                if wp.weight != 0.0 and result.rectangle.contains_point(wp.point)
            ]
            assert list(result.members) == expected


class TestRBursty:
    def test_empty(self):
        assert r_bursty([]) == []

    def test_all_negative(self):
        pts = [WeightedPoint(Point(0, 0), -1.0)]
        assert r_bursty(pts) == []

    def test_two_separate_clusters(self):
        pts = [
            WeightedPoint(Point(0, 0), 2.0, "a"),
            WeightedPoint(Point(1, 0), 2.0, "b"),
            WeightedPoint(Point(50, 50), -3.0, "gap"),
            WeightedPoint(Point(100, 100), 1.5, "c"),
        ]
        rects = r_bursty(pts)
        assert len(rects) == 2
        assert rects[0].score == pytest.approx(4.0)
        assert rects[1].score == pytest.approx(1.5)

    def test_scores_non_increasing(self):
        pts = [
            WeightedPoint(Point(float(i * 10), 0.0), float(5 - i), str(i))
            for i in range(5)
        ]
        rects = r_bursty(pts)
        scores = [r.score for r in rects]
        assert scores == sorted(scores, reverse=True)

    def test_streams_never_shared(self):
        """The −∞ trick: no stream appears in two reported rectangles."""
        pts = [
            WeightedPoint(Point(float(x), float(y)), 1.0, (x, y))
            for x in range(4)
            for y in range(4)
        ]
        rects = r_bursty(pts)
        seen = set()
        for rect in rects:
            ids = {wp.stream_id for wp in rect.members}
            assert not (ids & seen)
            seen |= ids

    def test_zero_weight_swallowed_and_retired(self):
        pts = [
            WeightedPoint(Point(0, 0), 2.0, "a"),
            WeightedPoint(Point(0.5, 0), 0.0, "passive"),
            WeightedPoint(Point(1, 0), 2.0, "b"),
        ]
        rects = r_bursty(pts)
        assert len(rects) == 1
        member_ids = {wp.stream_id for wp in rects[0].members}
        assert member_ids == {"a", "passive", "b"}

    def test_termination_bound(self):
        pts = [
            WeightedPoint(Point(float(i), float(i % 3)), 0.5, i) for i in range(30)
        ]
        rects = r_bursty(pts)
        assert len(rects) <= len(pts)

    @settings(max_examples=50)
    @given(weighted_points)
    def test_all_rects_positive(self, pts):
        for rect in r_bursty(pts):
            assert rect.score > 0.0
