"""Exception-hygiene clean twin: concrete handlers, reasoned broadness."""


def narrow_handler(probe):
    try:
        return probe()
    except (TypeError, ValueError):
        return None


def reasoned_broadness(probe):
    try:
        return probe()
    except Exception:  # repro: noqa[exception-hygiene] -- user-supplied callable; any failure means "unsupported"
        return None
