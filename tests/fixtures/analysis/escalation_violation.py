"""Error-escalation fixture: swallowed I/O and corruption failures."""


def swallowed_oserror(path):
    try:
        with open(path, "rb") as handle:
            return handle.read()
    except OSError:  # M:oserror
        return None


def swallowed_corruption(reader, term):
    try:
        return reader.check_term(term)
    except StoreCorruptionError:  # noqa: F821  M:corruption
        return None


def swallowed_in_tuple(path):
    try:
        with open(path, "rb") as handle:
            return handle.read()
    except (ValueError, FileNotFoundError):  # M:tuple
        return None


def swallowed_typed_io(segment, term):
    try:
        return segment.posting_array(term)
    except StoreIOError:  # noqa: F821  M:typed-io
        return None


def logged_but_swallowed(path, log):
    try:
        with open(path, "rb") as handle:
            return handle.read()
    except PermissionError as exc:  # M:logged
        log.append(str(exc))
        return None
