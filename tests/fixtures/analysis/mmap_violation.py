"""Mmap-safety fixture: raw loads and in-place mutation of loaded arrays."""

import numpy as np


def raw_load(path):
    return np.load(path, mmap_mode="r")  # M:raw-load


def mutate_loaded(reader):
    arr = reader.array("postings/scores.npy")
    arr[0] = 1.0  # M:subscript-write
    arr += 2.0  # M:augassign
    arr.sort()  # M:inplace-sort
    arr.setflags(write=True)  # M:unfreeze
    np.add(arr, arr, out=arr)  # M:out-buffer
    return arr


class Holder:
    def __init__(self, reader):
        self._scores = reader.array("postings/scores.npy")

    def corrupt(self):
        self._scores[3] = 0.0  # M:attr-subscript-write
