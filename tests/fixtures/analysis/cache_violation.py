"""Cache-invalidation fixture: a versioned class with a silent mutator."""


class VersionedIndex:
    def __init__(self):
        self._version = 0
        self._items = []

    def add_item(self, item):  # M:silent-mutator
        self._items.append(item)

    def remove_item(self, item):  # M:silent-remove
        self._items.remove(item)

    def add_many(self, items):
        for item in items:
            self._items.append(item)
        self._version += 1

    def version(self):
        return self._version
