"""Exception-hygiene fixture: bare and broad handlers."""


def bare_handler(probe):
    try:
        return probe()
    except:  # noqa: E722  M:bare
        return None


def broad_handler(probe):
    try:
        return probe()
    except Exception:  # M:broad
        return None


def broad_in_tuple(probe):
    try:
        return probe()
    except (ValueError, Exception):  # M:tuple-broad
        return None


def broad_base(probe):
    try:
        return probe()
    except BaseException:  # M:base
        return None
