"""Cross-module helper: the version bump lives at the end of the chain."""


def compact_segments(index):
    merged = list(index._segments)
    index._segments = merged
    index._version += 1
    return len(merged)
