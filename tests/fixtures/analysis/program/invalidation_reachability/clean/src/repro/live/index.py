"""Versioned index whose mutator delegates to a helper that bumps."""

from repro.live.maintenance import compact_segments


class SegmentIndex:
    def __init__(self):
        self._version = 0
        self._segments = []

    def add_segment(self, segment):
        self._segments.append(segment)
        compact_segments(self)

    def remove_segment(self, segment):
        self._segments.remove(segment)
        self._version += 1
