"""Cross-module helper: merges segments but forgets the version bump."""


def compact_segments(index):
    merged = list(index._segments)
    index._segments = merged
    return len(merged)
