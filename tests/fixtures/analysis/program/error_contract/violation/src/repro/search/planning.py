"""Middle hop: nothing wrong here, the raise just flows through."""

from repro.search.costs import estimate_cost


def choose_plan(query):  # M:helper
    return estimate_cost(query)
