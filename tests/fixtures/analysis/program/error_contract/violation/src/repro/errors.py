"""Mini error hierarchy mirroring the real ``repro.errors``."""


class ReproError(Exception):
    pass


class SearchError(ReproError, ValueError):
    pass
