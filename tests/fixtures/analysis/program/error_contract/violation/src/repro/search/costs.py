"""Deepest helper: raises a bare builtin out of the public surface."""


def estimate_cost(query):  # M:origin
    if not query:
        raise ValueError("empty query")  # M:raise
    return len(query)
