"""Public search surface; the contract violation is three calls deep."""

from repro.search.planning import choose_plan


def top_events(query):  # M:entry
    return choose_plan(query)
