"""Package re-export: the entry point callers actually import."""

from repro.search.api import top_events

__all__ = ["top_events"]
