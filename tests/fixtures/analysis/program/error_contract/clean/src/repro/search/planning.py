"""Middle hop: nothing wrong here, the raise just flows through."""

from repro.search.costs import estimate_cost


def choose_plan(query):
    return estimate_cost(query)
