"""Public search surface; deep failures are absorbed at the boundary."""

from repro.errors import SearchError
from repro.search.planning import choose_plan


def top_events(query):
    try:
        return choose_plan(query)
    except OverflowError as exc:
        raise SearchError(f"plan overflow: {exc}") from exc
