"""Deepest helper: fails with the typed error the contract demands."""

from repro.errors import SearchError


def estimate_cost(query):
    if not query:
        raise SearchError("empty query")
    return len(query)
