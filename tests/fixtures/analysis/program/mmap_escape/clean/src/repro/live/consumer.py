"""Outside-the-store consumer: receives a read-only array."""

from repro.store.reader import open_column


def serve(path):
    return open_column(path)
