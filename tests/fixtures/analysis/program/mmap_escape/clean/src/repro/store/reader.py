"""Store read path: every array is frozen before it crosses out."""

import numpy


def _load_raw(path):
    data = numpy.load(path, mmap_mode="r+")
    return data  # private: fine while it stays inside the store


def open_column(path):
    data = _load_raw(path)
    data.flags.writeable = False
    return data
