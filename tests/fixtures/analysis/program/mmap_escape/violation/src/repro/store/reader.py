"""Store read path: a raw mmap leaks out through a public wrapper."""

import numpy


def _load_raw(path):
    data = numpy.load(path, mmap_mode="r+")
    return data  # private: fine while it stays inside the store


def open_column(path):
    return _load_raw(path)  # M:leak


def open_frozen(path):
    data = _load_raw(path)
    data.flags.writeable = False
    return data  # frozen on this path: clean
