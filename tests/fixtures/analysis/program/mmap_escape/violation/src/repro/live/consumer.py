"""Outside-the-store consumer: receives the writeable mmap."""

from repro.store.reader import open_column


def serve(path):
    return open_column(path)
