"""Async query gateway that yields instead of blocking."""

import asyncio

from repro.live.workers import drain_queue


async def handle_query(query):
    await asyncio.sleep(0.01)
    await drain_queue(query)
    return query
