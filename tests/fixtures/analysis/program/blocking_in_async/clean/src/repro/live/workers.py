"""Async helpers; awaiting them is the event loop working as designed."""

import asyncio


async def drain_queue(query):
    await _wait_for_slot()
    return query


async def _wait_for_slot():
    await asyncio.sleep(0.1)
