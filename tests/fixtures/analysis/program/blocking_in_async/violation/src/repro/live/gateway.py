"""Async query gateway that stalls its event loop, twice."""

import time

from repro.live.workers import drain_queue


async def handle_query(query):
    time.sleep(0.01)  # M:direct
    drain_queue(query)  # M:indirect
    return query
