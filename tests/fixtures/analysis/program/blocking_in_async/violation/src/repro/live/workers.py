"""Sync helpers; the blocking wait hides one call deeper."""

import time


def drain_queue(query):
    _wait_for_slot()
    return query


def _wait_for_slot():
    time.sleep(0.1)  # M:sleep
