"""Determinism clean twin: the compliant spelling of each pattern."""

import random

import numpy as np


def seeded_rng(seed):
    return np.random.default_rng(seed).random(3)


def seeded_stdlib(seed):
    return random.Random(seed).random()


def sorted_set_iteration(items):
    chosen = set(items)
    total = []
    for item in sorted(chosen):
        total.append(item)
    return total


def order_insensitive_consumers(items):
    merged = set(items) | {0}
    return sum(x + 1 for x in merged), max(merged), len(merged)


def set_comprehension_result(items):
    # A set comprehension *produces* a set — order-free by construction.
    return sorted({x * 2 for x in set(items)})
