"""Dtype-discipline fixture: platform-native dtypes in codec positions."""

import numpy as np


def python_scalar(values):
    return np.asarray(values, dtype=float)  # M:python-float


def native_numpy(values):
    return np.asarray(values, dtype=np.int64)  # M:native-int64


def native_zeros(n):
    return np.zeros(n, dtype=np.float64)  # M:native-float64


def astype_scalar(arr):
    return arr.astype(int)  # M:astype-int


def unordered_string(values):
    return np.asarray(values, dtype="i8")  # M:orderless-string
