"""Picklability fixture: unpicklable callables crossing a pool boundary."""

import functools
import multiprocessing
from concurrent.futures import ProcessPoolExecutor


def submit_lambda(items):
    with ProcessPoolExecutor() as pool:
        return [pool.submit(lambda x: x + 1, item) for item in items]  # M:lambda


def submit_nested(items):
    def helper(x):
        return x + 1

    with ProcessPoolExecutor() as pool:
        return list(pool.map(helper, items))  # M:nested


def submit_assigned_lambda(items):
    shift = lambda x: x + 1  # noqa: E731
    pool = ProcessPoolExecutor()
    return list(pool.map(shift, items))  # M:assigned-lambda


def submit_partial_lambda(items):
    with multiprocessing.Pool() as pool:
        return pool.map(functools.partial(lambda x, y: x + y, 1), items)  # M:partial-lambda


class Miner:
    def mine(self, items):
        with ProcessPoolExecutor() as pool:
            return list(pool.map(self._mine_one, items))  # M:bound-method

    def _mine_one(self, item):
        return item + 1
