"""Mmap-safety boundary fixture: a loader that forgets the freeze."""

import numpy as np


def load_segment(path):
    return np.load(path, mmap_mode="r", allow_pickle=False)  # M:no-freeze
