"""Picklability clean twin: module-level callables only."""

import functools
from concurrent.futures import ProcessPoolExecutor


def _work(item, offset=0):
    return item + offset


def submit_module_level(items):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(_work, items))


def submit_partial_of_module_level(items):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(functools.partial(_work, offset=2), items))


def thread_pool_lambda_is_fine(items):
    # ThreadPoolExecutor shares the process: no pickling involved.
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor() as pool:
        return list(pool.map(lambda x: x + 1, items))
