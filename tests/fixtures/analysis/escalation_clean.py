"""Error-escalation clean twin: typed escalation, quarantine, reasons."""


def escalates_typed(path):
    try:
        with open(path, "rb") as handle:
            return handle.read()
    except OSError as exc:
        raise StoreIOError(f"cannot read {path!r}: {exc}")  # noqa: F821


def reraises_corruption(reader, term):
    try:
        return reader.check_term(term)
    except StoreCorruptionError:  # noqa: F821
        raise


def records_quarantine(self, term):
    try:
        return self._segments.posting_array(term)
    except StoreCorruptionError as exc:  # noqa: F821
        self._quarantine(term, str(exc))
        return None


def plain_store_error_probe(reader, name):
    # StoreError is the typed umbrella — catching it consumes an
    # already-escalated condition, which the rule permits.
    try:
        return reader.json(name)
    except StoreError:  # noqa: F821
        return None


def reasoned_swallow(path):
    try:
        with open(path, "rb") as handle:
            return handle.read()
    except OSError:  # repro: noqa[error-escalation] -- best-effort probe; absence is a legal answer here
        return None
