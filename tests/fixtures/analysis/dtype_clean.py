"""Dtype-discipline clean twin: pinned little-endian spellings."""

import numpy as np

_STORE_DTYPES = {"i": "<i8", "f": "<f8", "b": "|b1"}


def pinned_int(values):
    return np.asarray(values, dtype="<i8")


def pinned_float(values):
    return np.asarray(values, dtype="<f8")


def pinned_bool(values):
    return np.asarray(values, dtype="|b1")


def astype_pinned(arr):
    return arr.astype("<i4")


def via_lookup(values, kind):
    # Indirection through the codec's canonical table is trusted.
    return np.asarray(values, dtype=_STORE_DTYPES[kind])


def no_dtype(values):
    return np.asarray(values)
