"""Mmap-safety clean twin: frozen at the boundary, copied downstream."""

import numpy as np


def load_segment(path):
    loaded = np.load(path, mmap_mode="r", allow_pickle=False)
    loaded.flags.writeable = False
    return loaded


def load_segment_setflags(path):
    loaded = np.load(path, allow_pickle=False)
    loaded.setflags(write=False)
    return loaded


def private_copy(reader):
    arr = reader.array("postings/scores.npy")
    scratch = arr.copy()
    scratch[0] = 1.0
    scratch.sort()
    return scratch
