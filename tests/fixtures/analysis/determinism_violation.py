"""Determinism fixture: every banned construct, one per marker line.

Analyzed by the tests under a fake kernel-scope path; never imported.
"""

import random
import time

import numpy as np


def wall_clock():
    return time.time()  # M:clock


def global_draw():
    return random.random()  # M:global-rng


def numpy_global_draw():
    return np.random.rand(3)  # M:np-global-rng


def unseeded_generator():
    return np.random.default_rng()  # M:unseeded


def set_for_loop(items):
    chosen = set(items)
    total = []
    for item in chosen:  # M:set-for
        total.append(item)
    return total


def set_comprehension_iteration(items):
    merged = set(items) | {0}
    return [x + 1 for x in merged]  # M:set-listcomp
