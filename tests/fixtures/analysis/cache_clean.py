"""Cache-invalidation clean twin: every mutator reaches a bump."""

from functools import cached_property


class DirectBump:
    def __init__(self):
        self._epoch = 0
        self._items = []

    def add_item(self, item):
        self._items.append(item)
        self._epoch += 1


class IndirectBump:
    def __init__(self):
        self._version = 0
        self._items = []

    def add_item(self, item):
        self._items.append(item)
        self._note_change()

    def clear(self):
        self._items = []
        self._note_change()

    def _note_change(self):
        self._version += 1


class HookBump:
    def __init__(self, index):
        self._generation = 0
        self._index = index

    def update_entry(self, key, value):
        self._index[key] = value
        self.invalidate_caches()  # inherited hook, not defined here


class DelegatingBump(DirectBump):
    def add_item(self, item):
        super().add_item(item)

    def _rebuild(self):
        self._epoch += 1


class GettersExempt:
    def __init__(self):
        self._version = 0
        self._items = []

    def add_item(self, item):
        self._items.append(item)
        self._version += 1

    def ingested_documents(self):
        return list(self._items)

    @property
    def update_count(self):
        return self._version

    @cached_property
    def insert_capacity(self):
        return len(self._items) + 16
