"""Smoke tests for the experiment runners on a miniature corpus.

The benchmark suite runs the full-size experiments; these tests verify
the runners' mechanics (structure, rendering, invariants) on a corpus
small enough for the unit-test budget.
"""

import pytest

from repro.datagen import CorpusSettings, MAJOR_EVENTS
from repro.eval import (
    TopixLab,
    exp_figure4,
    exp_figure5,
    exp_figure6,
    exp_figure7,
    exp_figure8,
    exp_table1,
    exp_table3,
)


@pytest.fixture(scope="module")
def mini_lab():
    settings = CorpusSettings(
        n_countries=30,
        timeline=48,
        background_rate=0.4,
        vocabulary_size=500,
        events=MAJOR_EVENTS[:6],
        seed=1,
    )
    return TopixLab(settings)


class TestTable1Runner:
    def test_rows_cover_all_queries(self, mini_lab):
        result = exp_table1(mini_lab)
        assert [row[0] for row in result.rows] == [1, 2, 3, 4, 5, 6]
        for _, _, n_local, n_comb, n_mbr in result.rows:
            assert 0 <= n_local <= 30
            assert 0 <= n_comb <= 30
            assert n_mbr <= 30
        assert "Table 1" in result.render()

    def test_mbr_at_least_membership(self, mini_lab):
        for _, _, _, n_comb, n_mbr in exp_table1(mini_lab).rows:
            if n_comb:
                assert n_mbr >= n_comb


class TestFigure4Runner:
    def test_lengths_within_timeline(self, mini_lab):
        result = exp_figure4(mini_lab)
        for _, _, local_len, comb_len in result.rows:
            assert 0 <= local_len <= 48
            assert 0 <= comb_len <= 48
        assert "Figure 4" in result.render()


class TestTable3Runner:
    def test_precisions_bounded(self, mini_lab):
        result = exp_table3(mini_lab, k=5)
        for _, _, tb, local, comb in result.rows:
            for value in (tb, local, comb):
                assert 0.0 <= value <= 1.0
        for overlap in result.overlaps.values():
            assert 0.0 <= overlap <= 1.0
        rendered = result.render()
        assert "averages" in rendered


class TestFigure56Runners:
    def test_figure5_buckets_partition(self, mini_lab):
        result = exp_figure5(mini_lab, sample=10)
        total = sum(fraction for _, fraction in result.buckets)
        assert total == pytest.approx(1.0)

    def test_figure6_below_bound(self, mini_lab):
        result = exp_figure6(mini_lab, sample=10)
        assert len(result.open_windows) == 48
        for measured, bound in zip(result.open_windows, result.upper_bound):
            assert measured <= bound


class TestFigure7Runner:
    def test_series_lengths(self, mini_lab):
        result = exp_figure7(mini_lab, sample=19)
        assert len(result.stcomb_ms) == 48
        assert len(result.stlocal_ms) == 48
        assert all(v >= 0.0 for v in result.stcomb_ms)
        assert all(v >= 0.0 for v in result.stlocal_ms)


class TestFigure8Runner:
    def test_sweep_structure(self):
        result = exp_figure8(
            stream_counts=(50, 100),
            timeline=40,
            n_terms=60,
            n_patterns=6,
            terms_per_point=2,
        )
        assert result.stream_counts == [50, 100]
        assert len(result.stcomb_s) == 2
        assert len(result.stlocal_s) == 2
        assert "Figure 8" in result.render()
