"""End-to-end integration: corpus → mining → search → metrics.

A scaled-down Topix-style corpus (40 countries, 24 weeks, 6 events)
exercises the full pipeline the way the paper's evaluation does, with
assertions on the *shape* of the results rather than absolute numbers.
"""

import pytest

from repro.datagen import CorpusSettings, GeneratorSettings, MAJOR_EVENTS, generate_dataset, generate_topix_corpus
from repro.core import BaseDetector, STComb, STCombConfig, STLocal
from repro.eval import (
    GroundTruthAnnotator,
    exp_figure9,
    jaccard_similarity,
    precision_at_k,
)
from repro.search import BurstySearchEngine, TemporalSearchEngine
from repro.streams import FrequencyTensor, tokenize


@pytest.fixture(scope="module")
def corpus():
    events = (
        MAJOR_EVENTS[0],   # Obama      — tier 1
        MAJOR_EVENTS[4],   # swine      — tier 1
        MAJOR_EVENTS[6],   # gaza       — tier 2
        MAJOR_EVENTS[12],  # Nkunda     — tier 3
        MAJOR_EVENTS[14],  # Tsvangirai — tier 3
    )
    # Compress the 48-week incidents into 24 weeks.
    settings = CorpusSettings(
        n_countries=60,
        timeline=48,
        background_rate=1.0,
        events=events,
        seed=4,
    )
    return generate_topix_corpus(settings)


@pytest.fixture(scope="module")
def tensor(corpus):
    return FrequencyTensor(corpus.collection)


class TestMiningPipeline:
    def test_every_event_yields_patterns(self, corpus, tensor):
        stcomb = STComb(config=STCombConfig(min_interval_score=0.2))
        stlocal = STLocal()
        locations = corpus.collection.locations()
        for _, query in corpus.queries():
            term = tokenize(query)[0]
            assert stcomb.top_pattern(tensor, term) is not None, query
            assert (
                stlocal.top_pattern(tensor, term, locations=locations)
                is not None
            ), query

    def test_tier1_wider_than_tier3(self, corpus, tensor):
        stlocal = STLocal()
        locations = corpus.collection.locations()

        def bursty_count(query):
            term = tokenize(query)[0]
            pattern = stlocal.top_pattern(tensor, term, locations=locations)
            members = pattern.bursty_streams or pattern.streams
            return len(members)

        assert bursty_count("Obama") > bursty_count("Tsvangirai")
        assert bursty_count("swine") > bursty_count("Nkunda")

    def test_stlocal_timeframe_covers_event(self, corpus, tensor):
        stlocal = STLocal()
        locations = corpus.collection.locations()
        pattern = stlocal.top_pattern(tensor, "obama", locations=locations)
        first, last = corpus.event_timeframes[1]
        assert pattern.timeframe.intersects(
            type(pattern.timeframe)(first, last)
        )


class TestSearchPipeline:
    def test_engines_retrieve_relevant_documents(self, corpus, tensor):
        annotator = GroundTruthAnnotator()
        stcomb = STComb(config=STCombConfig(min_interval_score=0.2))
        patterns = {
            term: stcomb.patterns_for_term(tensor, term)
            for _, query in corpus.queries()
            for term in tokenize(query)
        }
        engine = BurstySearchEngine(corpus.collection, patterns)
        tb = TemporalSearchEngine(corpus.collection)
        for current in (engine, tb):
            precisions = []
            for event_id, query in corpus.queries():
                hits = current.search(query, k=10)
                assert hits, (query, type(current).__name__)
                flags = annotator.judge([h.document for h in hits], event_id)
                precision = precision_at_k(flags)
                precisions.append(precision)
                if event_id in (1, 5):  # tier-1 queries must do well
                    assert precision >= 0.5, (query, type(current).__name__)
            average = sum(precisions) / len(precisions)
            assert average >= 0.4, type(current).__name__

    def test_retrieved_docs_contain_all_query_terms(self, corpus, tensor):
        stcomb = STComb(config=STCombConfig(min_interval_score=0.2))
        patterns = {
            term: stcomb.patterns_for_term(tensor, term)
            for term in tokenize("gaza")
        }
        engine = BurstySearchEngine(corpus.collection, patterns)
        for hit in engine.search("gaza", k=10):
            assert hit.document.frequency("gaza") > 0


class TestSyntheticRetrieval:
    def test_methods_beat_base_on_distgen(self):
        settings = GeneratorSettings(
            mode="dist", timeline=120, n_streams=30, n_terms=200,
            n_patterns=25, seed=11,
        )
        data = generate_dataset(settings)
        stlocal = STLocal()
        base = BaseDetector()

        def avg_jaccard(retrieve):
            scores = []
            for pattern in data.patterns:
                found = retrieve(pattern.term)
                if found is None:
                    scores.append(0.0)
                    continue
                scores.append(jaccard_similarity(found, pattern.streams))
            return sum(scores) / len(scores)

        def stlocal_streams(term):
            pattern = stlocal.top_pattern(data, term, locations=data.locations)
            if pattern is None:
                return None
            return pattern.bursty_streams or pattern.streams

        def base_streams(term):
            pattern = base.top_pattern(data, term)
            return None if pattern is None else pattern.streams

        assert avg_jaccard(stlocal_streams) > avg_jaccard(base_streams)


class TestFigure9:
    def test_curve_shapes(self):
        result = exp_figure9()
        rendered = result.render()
        assert "k=5.0" in rendered
        curves = dict(result.curves)
        # k=1 (exponential-like) is monotone decreasing.
        decreasing = curves["k=1.0,c=1.0"]
        assert all(a >= b for a, b in zip(decreasing, decreasing[1:]))
        # k=5,c=3 rises to an interior peak.
        humped = curves["k=5.0,c=3.0"]
        peak_index = humped.index(max(humped))
        assert 0 < peak_index < len(humped) - 1
