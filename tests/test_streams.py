"""Documents, streams, collections, frequency tensors."""

import numpy as np
import pytest

from repro.errors import StreamError, UnknownTermError
from repro.spatial import Point
from repro.streams import (
    Document,
    DocumentStream,
    FrequencyTensor,
    SpatiotemporalCollection,
    tokenize,
)


class TestTokenize:
    def test_lowercase_alnum(self):
        assert tokenize("Air France Flight-447!") == ("air", "france", "flight", "447")

    def test_empty(self):
        assert tokenize("") == ()

    def test_numbers_kept(self):
        assert tokenize("h1n1 virus") == ("h1n1", "virus")


class TestDocument:
    def test_from_text(self):
        doc = Document.from_text(1, "us", 3, "Obama visits Ohio; Obama speaks")
        assert doc.frequency("obama") == 2
        assert doc.frequency("ohio") == 1
        assert doc.frequency("mars") == 0

    def test_negative_timestamp(self):
        with pytest.raises(StreamError):
            Document(1, "us", -1, ("a",))

    def test_term_counts(self):
        doc = Document(1, "us", 0, ("a", "b", "a"))
        assert doc.term_counts() == {"a": 2, "b": 1}

    def test_contains_any(self):
        doc = Document(1, "us", 0, ("a", "b"))
        assert doc.contains_any(["b", "z"])
        assert not doc.contains_any(["z"])

    def test_len(self):
        assert len(Document(1, "us", 0, ("a", "b", "c"))) == 3

    def test_provenance_default_none(self):
        assert Document(1, "us", 0, ("a",)).event_id is None


class TestDocumentStream:
    def _stream(self):
        stream = DocumentStream("us", Point(0, 0))
        stream.add(Document(1, "us", 0, ("a", "b")))
        stream.add(Document(2, "us", 0, ("a",)))
        stream.add(Document(3, "us", 2, ("b", "b")))
        return stream

    def test_wrong_stream_rejected(self):
        stream = DocumentStream("us", Point(0, 0))
        with pytest.raises(StreamError):
            stream.add(Document(1, "uk", 0, ("a",)))

    def test_frequency_eq6(self):
        stream = self._stream()
        assert stream.frequency(0, "a") == 2
        assert stream.frequency(2, "b") == 2
        assert stream.frequency(1, "a") == 0

    def test_documents_at(self):
        stream = self._stream()
        assert len(stream.documents_at(0)) == 2
        assert stream.documents_at(5) == []

    def test_frequency_sequence(self):
        stream = self._stream()
        assert stream.frequency_sequence("b", 4) == [1.0, 0.0, 2.0, 0.0]

    def test_total_tokens(self):
        stream = self._stream()
        assert stream.total_tokens(0) == 3
        assert stream.total_tokens(9) == 0

    def test_terms_at(self):
        assert sorted(self._stream().terms_at(0)) == ["a", "b"]

    def test_iteration_time_ordered(self):
        docs = list(self._stream())
        assert [d.doc_id for d in docs] == [1, 2, 3]

    def test_len(self):
        assert len(self._stream()) == 3

    def test_timestamps(self):
        assert self._stream().timestamps() == [0, 2]


class TestCollection:
    def _collection(self):
        coll = SpatiotemporalCollection(timeline=5)
        coll.add_stream("us", Point(0, 0))
        coll.add_stream("uk", Point(10, 10))
        coll.add_document(Document(1, "us", 0, ("a", "b")))
        coll.add_document(Document(2, "uk", 0, ("a",)))
        coll.add_document(Document(3, "uk", 3, ("b",)))
        return coll

    def test_invalid_timeline(self):
        with pytest.raises(StreamError):
            SpatiotemporalCollection(timeline=0)

    def test_duplicate_stream(self):
        coll = SpatiotemporalCollection(timeline=5)
        coll.add_stream("us", Point(0, 0))
        with pytest.raises(StreamError):
            coll.add_stream("us", Point(1, 1))

    def test_unknown_stream_document(self):
        coll = self._collection()
        with pytest.raises(StreamError):
            coll.add_document(Document(9, "fr", 0, ("a",)))

    def test_timestamp_outside_timeline(self):
        coll = self._collection()
        with pytest.raises(StreamError):
            coll.add_document(Document(9, "us", 5, ("a",)))

    def test_version_counts_mutations(self):
        coll = SpatiotemporalCollection(timeline=5)
        assert coll.version == 0
        coll.add_stream("us", Point(0, 0))
        assert coll.version == 1
        coll.add_document(Document(1, "us", 0, ("a",)))
        assert coll.version == 2
        coll.frequency("us", 0, "a")  # reads leave the version alone
        assert coll.version == 2

    def test_subscribe_notifies_after_routing(self):
        coll = self._collection()
        seen = []
        coll.subscribe(
            lambda doc: seen.append((doc.doc_id, coll.document_count))
        )
        coll.add_document(Document(9, "us", 1, ("c",)))
        # The listener observed the document already counted in.
        assert seen == [(9, 4)]

    def test_snapshot(self):
        snapshot = self._collection().snapshot(0)
        assert len(snapshot["us"]) == 1
        assert len(snapshot["uk"]) == 1

    def test_vocabulary(self):
        assert self._collection().vocabulary == {"a", "b"}

    def test_frequency_matrix(self):
        matrix = self._collection().frequency_matrix("b")
        assert matrix.shape == (2, 5)
        assert matrix[0, 0] == 1.0
        assert matrix[1, 3] == 1.0
        assert matrix.sum() == 2.0

    def test_frequency_matrix_unknown_term(self):
        with pytest.raises(UnknownTermError):
            self._collection().frequency_matrix("zzz")

    def test_merged_sequence(self):
        merged = self._collection().merged_frequency_sequence("a")
        assert merged == [2.0, 0.0, 0.0, 0.0, 0.0]

    def test_terms_at(self):
        assert self._collection().terms_at(3) == {"b"}

    def test_document_count_and_len(self):
        coll = self._collection()
        assert coll.document_count == 3
        assert len(coll) == 2

    def test_documents_matching(self):
        docs = list(self._collection().documents_matching(["b"]))
        assert {d.doc_id for d in docs} == {1, 3}

    def test_locations(self):
        assert self._collection().locations()["uk"] == Point(10, 10)


class TestFrequencyTensor:
    def _tensor(self):
        coll = SpatiotemporalCollection(timeline=4)
        coll.add_stream("us", Point(0, 0))
        coll.add_stream("uk", Point(5, 5))
        coll.add_document(Document(1, "us", 1, ("a", "a", "b")))
        coll.add_document(Document(2, "uk", 2, ("a",)))
        return FrequencyTensor(coll), coll

    def test_terms(self):
        tensor, _ = self._tensor()
        assert tensor.terms == {"a", "b"}

    def test_sequence_matches_collection(self):
        tensor, coll = self._tensor()
        for term in ("a", "b"):
            for sid in ("us", "uk"):
                assert tensor.sequence(term, sid) == coll.frequency_sequence(sid, term)

    def test_slice_at(self):
        tensor, _ = self._tensor()
        assert tensor.slice_at("a", 1) == {"us": 2.0}
        assert tensor.slice_at("a", 2) == {"uk": 1.0}
        assert tensor.slice_at("a", 0) == {}

    def test_streams_with(self):
        tensor, _ = self._tensor()
        assert set(tensor.streams_with("a")) == {"us", "uk"}
        assert tensor.streams_with("b") == ["us"]

    def test_total(self):
        tensor, _ = self._tensor()
        assert tensor.total("a") == 3.0
        assert tensor.total("zzz") == 0.0

    def test_nonzero(self):
        tensor, _ = self._tensor()
        entries = set(tensor.nonzero("a"))
        assert entries == {("us", 1, 2.0), ("uk", 2, 1.0)}

    def test_top_terms(self):
        tensor, _ = self._tensor()
        assert tensor.top_terms(1) == [("a", 3.0)]

    def test_immutable_after_build(self):
        tensor, coll = self._tensor()
        coll.add_document(Document(3, "us", 3, ("a",)))
        assert tensor.total("a") == 3.0  # copy semantics
