"""CLI persistence flows: save / load / --from-store, and their error paths.

The error-path contract (exercised in-process through ``main``): every
failure mode a user can hit — missing store, corrupted manifest,
checksum mismatch, populated save target — exits nonzero with an
actionable single-line message on stderr, never a traceback.
"""

import os

import pytest

from repro import (
    BatchMiner,
    BurstySearchEngine,
    Document,
    Point,
    SpatiotemporalCollection,
)
from repro.cli import main
from repro.store import MANIFEST_NAME, save_search_index


@pytest.fixture(scope="module")
def index_store(tmp_path_factory):
    """A small but real index store, saved through the library API."""
    collection = SpatiotemporalCollection(timeline=20)
    for i in range(4):
        collection.add_stream(f"s{i}", Point(float(i % 2), float(i // 2)))
    doc = 0
    for t in range(20):
        for i in range(4):
            collection.add_document(Document(doc, f"s{i}", t, ("filler",)))
            doc += 1
    for t in (8, 9, 10, 11):
        for i in (0, 1):
            for _ in range(4):
                collection.add_document(
                    Document(doc, f"s{i}", t, ("crisis", "crisis"))
                )
                doc += 1
    mined = BatchMiner().mine_regional(collection)
    engine = BurstySearchEngine(collection, mined)
    path = str(tmp_path_factory.mktemp("clistore") / "index")
    save_search_index(
        path, engine, "regional", terms=sorted(collection.vocabulary)
    )
    return path


def corrupt(path, name):
    target = os.path.join(path, name)
    with open(target, "r+b") as handle:
        handle.seek(-1, os.SEEK_END)
        last = handle.read(1)
        handle.seek(-1, os.SEEK_END)
        handle.write(bytes([last[0] ^ 0xFF]))


class TestErrorPaths:
    def test_load_missing_store(self, tmp_path, capsys):
        assert main(["load", "--store", str(tmp_path / "nope")]) != 0
        err = capsys.readouterr().err
        assert "error:" in err
        assert "does not exist" in err
        assert "Traceback" not in err

    def test_load_interrupted_store(self, tmp_path, capsys):
        partial = tmp_path / "partial"
        partial.mkdir()
        (partial / "stray.npy").write_bytes(b"xx")
        assert main(["load", "--store", str(partial)]) != 0
        err = capsys.readouterr().err
        assert "interrupted" in err or "not a segment store" in err
        assert "Traceback" not in err

    def test_load_corrupted_manifest(self, index_store, tmp_path, capsys):
        import shutil

        broken = str(tmp_path / "broken")
        shutil.copytree(index_store, broken)
        with open(os.path.join(broken, MANIFEST_NAME), "w") as handle:
            handle.write('{"format": "repro-segment-store", oops')
        assert main(["load", "--store", broken]) != 0
        err = capsys.readouterr().err
        assert "corrupted manifest" in err
        assert "Traceback" not in err

    def test_search_from_store_checksum_mismatch(
        self, index_store, tmp_path, capsys
    ):
        import shutil

        broken = str(tmp_path / "broken")
        shutil.copytree(index_store, broken)
        corrupt(broken, os.path.join("postings", "scores.npy"))
        code = main(
            ["search", "--from-store", broken, "--query", "crisis"]
        )
        assert code != 0
        err = capsys.readouterr().err
        assert "checksum mismatch" in err
        assert "postings/scores.npy" in err
        assert "Traceback" not in err

    def test_save_into_nonempty_directory(self, tmp_path, capsys):
        target = tmp_path / "occupied"
        target.mkdir()
        (target / "keep.txt").write_text("precious")
        assert main(["save", "--out", str(target)]) != 0
        err = capsys.readouterr().err
        assert "not empty" in err
        assert "Traceback" not in err
        # Nothing was touched — and no corpus was built first (the
        # failure must come before the expensive mine).
        assert (target / "keep.txt").read_text() == "precious"
        assert "corpus ready" not in err

    def test_ingest_checkpoint_into_nonempty_directory(self, tmp_path, capsys):
        target = tmp_path / "occupied"
        target.mkdir()
        (target / "keep.txt").write_text("precious")
        assert main(["ingest", "--checkpoint-to", str(target)]) != 0
        err = capsys.readouterr().err
        assert "not empty" in err
        assert "Traceback" not in err

    def test_load_wrong_kind_verify_message(self, tmp_path, capsys):
        from repro.store import SegmentWriter

        path = str(tmp_path / "odd")
        writer = SegmentWriter(path)
        writer.add_json("x.json", {})
        writer.commit("mystery-kind")
        assert main(["load", "--store", path, "--verify"]) != 0
        err = capsys.readouterr().err
        assert "mystery-kind" in err
        assert "Traceback" not in err


class TestServingFlows:
    def test_load_summary_and_verify(self, index_store, capsys):
        assert main(["load", "--store", index_store, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "checksums OK" in out
        assert "byte-identical" in out

    def test_search_from_store(self, index_store, capsys):
        assert (
            main(
                [
                    "search",
                    "--from-store",
                    index_store,
                    "--query",
                    "crisis",
                    "--compare",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "cold-started engine from store" in captured.err
        assert "rankings byte-identical across strategies: yes" in captured.out

    def test_ingest_checkpoint_resume_cycle(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        assert (
            main(
                [
                    "ingest",
                    "--checkpoint-to",
                    ckpt,
                    "--report-every",
                    "0",
                    "--verify",
                ]
            )
            == 0
        )
        first = capsys.readouterr().out
        assert "checkpoint written" in first
        assert "OK" in first
        # Resume from the checkpoint over the identical feed: every
        # record is already covered, so the engine serves immediately
        # and still matches a cold batch rebuild.
        assert (
            main(
                [
                    "ingest",
                    "--from-store",
                    ckpt,
                    "--report-every",
                    "0",
                    "--verify",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "resuming ingestion" in captured.err
        assert "OK" in captured.out
        assert main(["load", "--store", ckpt, "--verify"]) == 0

    def test_resume_verify_uses_checkpoint_timeline(self, tmp_path, capsys):
        """Regression: --verify rebuilt the cold collection with this
        run's --timeline instead of the checkpoint's, crashing when a
        checkpoint written with a longer timeline was resumed under
        the default."""
        import json

        feed = tmp_path / "feed.jsonl"
        records = [{"type": "stream", "id": "s0", "x": 0.0, "y": 0.0},
                   {"type": "stream", "id": "s1", "x": 1.0, "y": 0.0}]
        doc = 0
        for t in range(60, 100):
            for sid in ("s0", "s1"):
                records.append(
                    {"doc_id": doc, "stream": sid, "timestamp": t,
                     "text": "storm storm" if t % 7 else "calm"}
                )
                doc += 1
        feed.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        ckpt = str(tmp_path / "ckpt")
        assert (
            main(["ingest", "--file", str(feed), "--timeline", "128",
                  "--checkpoint-to", ckpt, "--report-every", "0"])
            == 0
        )
        capsys.readouterr()
        # Resume with the default --timeline (64 < the document range).
        assert (
            main(["ingest", "--file", str(feed), "--from-store", ckpt,
                  "--report-every", "0", "--verify"])
            == 0
        )
        captured = capsys.readouterr()
        assert "OK" in captured.out
        assert "Traceback" not in captured.err


class TestFeedValidation:
    """``repro ingest`` rejects malformed JSONL with line-numbered
    reasons and applies nothing from a bad batch."""

    def test_malformed_json_line_exits_2_with_line_number(
        self, tmp_path, capsys
    ):
        feed = tmp_path / "feed.jsonl"
        feed.write_text(
            '{"type": "stream", "id": "s0", "x": 0.0, "y": 0.0}\n'
            "{this is not json}\n"
        )
        assert main(["ingest", "--file", str(feed)]) == 2
        err = capsys.readouterr().err
        assert f"{feed}:2" in err
        assert "not valid JSON" in err
        assert "no records were applied" in err
        assert "Traceback" not in err

    def test_missing_field_names_line_kind_and_fields(
        self, tmp_path, capsys
    ):
        feed = tmp_path / "feed.jsonl"
        feed.write_text(
            '{"type": "stream", "id": "s0", "x": 0.0, "y": 0.0}\n'
            "\n"
            '{"doc_id": 1, "stream": "s0"}\n'
        )
        assert main(["ingest", "--file", str(feed)]) == 2
        err = capsys.readouterr().err
        assert f"{feed}:3" in err  # blank lines still count
        assert "'doc'" in err
        assert "timestamp" in err and "text" in err
        assert "Traceback" not in err

    def test_unknown_record_type_rejected(self, tmp_path, capsys):
        feed = tmp_path / "feed.jsonl"
        feed.write_text('{"type": "selfdestruct"}\n')
        assert main(["ingest", "--file", str(feed)]) == 2
        err = capsys.readouterr().err
        assert "selfdestruct" in err
        assert "Traceback" not in err

    def test_bad_batch_applies_nothing(self, tmp_path, capsys):
        """A checkpoint target stays untouched when the feed is bad —
        validation happens before any record is applied."""
        feed = tmp_path / "feed.jsonl"
        feed.write_text(
            '{"type": "stream", "id": "s0", "x": 0.0, "y": 0.0}\n'
            '{"type": "advance", "timestamp": "soon"}\n'
        )
        ckpt = tmp_path / "ckpt"
        assert (
            main(["ingest", "--file", str(feed), "--checkpoint-to", str(ckpt)])
            == 2
        )
        err = capsys.readouterr().err
        assert f"{feed}:2" in err
        assert "integer" in err
        assert not ckpt.exists()


class TestFsckRepairCli:
    def test_fsck_clean_store_exit_0(self, index_store, capsys):
        assert main(["fsck", "--store", index_store]) == 0
        out = capsys.readouterr().out
        assert "verdict: clean" in out

    def test_fsck_json_report_written(self, index_store, tmp_path, capsys):
        import json

        out_file = str(tmp_path / "fsck.json")
        assert (
            main(["fsck", "--store", index_store, "--format", "json",
                  "--output", out_file])
            == 0
        )
        with open(out_file) as handle:
            payload = json.load(handle)
        assert payload["exit_code"] == 0
        assert payload["kind"] == "index"
        assert all(v == "ok" for v in payload["files"].values())

    def test_fsck_missing_store_exit_2(self, tmp_path, capsys):
        assert main(["fsck", "--store", str(tmp_path / "nope")]) == 2
        out = capsys.readouterr().out
        assert "unreadable" in out

    def test_corrupt_fsck_repair_fsck_flow(self, index_store, tmp_path, capsys):
        """The CI recovery flow: flip a byte, fsck flags it (exit 1),
        repair quarantines and rebuilds, fsck comes back clean."""
        import shutil

        broken = str(tmp_path / "broken")
        shutil.copytree(index_store, broken)
        corrupt(broken, os.path.join("postings", "scores.npy"))
        assert main(["fsck", "--store", broken]) == 1
        out = capsys.readouterr().out
        assert "checksum mismatch" in out
        assert "postings/scores.npy" in out
        # dry run first: reports, changes nothing
        assert main(["repair", "--store", broken]) == 1
        assert "dry run" in capsys.readouterr().out
        assert main(["fsck", "--store", broken]) == 1
        capsys.readouterr()
        # the real repair
        assert main(["repair", "--store", broken, "--quarantine"]) == 0
        out = capsys.readouterr().out
        assert "quarantined postings/scores.npy" in out
        assert "rebuilt segment postings/" in out
        assert main(["fsck", "--store", broken]) == 0
        capsys.readouterr()
        assert main(["load", "--store", broken, "--verify"]) == 0
        assert os.path.exists(
            os.path.join(broken, "quarantine", "postings", "scores.npy")
        )

    def test_search_degraded_mode(self, index_store, tmp_path, capsys):
        import shutil

        broken = str(tmp_path / "broken")
        shutil.copytree(index_store, broken)
        corrupt(broken, os.path.join("postings", "scores.npy"))
        # default policy refuses
        assert (
            main(["search", "--from-store", broken, "--query", "crisis"])
            != 0
        )
        capsys.readouterr()
        # degrade policy serves, reporting the quarantined term
        assert (
            main(["search", "--from-store", broken, "--query", "crisis",
                  "--on-corruption", "degrade"])
            == 0
        )
        captured = capsys.readouterr()
        assert "DEGRADED MODE" in captured.err or "WARNING" in captured.out
        assert "Traceback" not in captured.err
