"""Generators: gazetteer, Weibull, vocabulary, distGen/randGen, corpus."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import (
    CorpusSettings,
    GeneratorSettings,
    MAJOR_EVENTS,
    WORLD_COUNTRIES,
    ZipfVocabulary,
    burst_profile,
    default_countries,
    events_by_tier,
    generate_dataset,
    generate_topix_corpus,
    weibull_mode,
    weibull_pdf,
)
from repro.errors import GenerationError


class TestWorld:
    def test_enough_countries(self):
        assert len(WORLD_COUNTRIES) >= 181

    def test_default_slice(self):
        assert len(default_countries()) == 181

    def test_unique_names(self):
        names = [c.name for c in WORLD_COUNTRIES]
        assert len(set(names)) == len(names)

    def test_coordinates_in_range(self):
        for country in WORLD_COUNTRIES:
            assert -90 <= country.lat <= 90
            assert -180 <= country.lon <= 180

    def test_too_many_rejected(self):
        with pytest.raises(ValueError):
            default_countries(10_000)


class TestEvents:
    def test_eighteen_events(self):
        assert len(MAJOR_EVENTS) == 18

    def test_table9_numbering(self):
        assert [e.event_id for e in MAJOR_EVENTS] == list(range(1, 19))

    def test_tier_partition(self):
        assert [e.event_id for e in events_by_tier(1)] == [1, 2, 3, 4, 5, 6]
        assert [e.event_id for e in events_by_tier(2)] == [7, 8, 9, 10, 11, 12]
        assert [e.event_id for e in events_by_tier(3)] == [13, 14, 15, 16, 17, 18]

    def test_invalid_tier(self):
        with pytest.raises(ValueError):
            events_by_tier(4)

    def test_known_queries(self):
        queries = {e.query for e in MAJOR_EVENTS}
        for expected in ("Obama", "financial crisis", "Tsvangirai", "Air France"):
            assert expected in queries

    def test_sources_in_gazetteer(self):
        names = {c.name for c in WORLD_COUNTRIES}
        for event in MAJOR_EVENTS:
            for incident in event.incidents:
                assert incident.source in names

    def test_incidents_within_timeline(self):
        for event in MAJOR_EVENTS:
            for incident in event.incidents:
                assert 0 <= incident.start_week < 48


class TestWeibull:
    def test_pdf_integrates_to_one(self):
        shape, scale = 2.0, 3.0
        step = 0.01
        total = sum(
            weibull_pdf(x * step, shape, scale) * step for x in range(1, 5000)
        )
        assert total == pytest.approx(1.0, abs=0.01)

    def test_mode_formula(self):
        assert weibull_mode(1.0, 2.0) == 0.0
        mode = weibull_mode(3.0, 2.0)
        # pdf at the mode beats its neighbours.
        assert weibull_pdf(mode, 3.0, 2.0) >= weibull_pdf(mode - 0.05, 3.0, 2.0)
        assert weibull_pdf(mode, 3.0, 2.0) >= weibull_pdf(mode + 0.05, 3.0, 2.0)

    def test_pdf_invalid_params(self):
        with pytest.raises(GenerationError):
            weibull_pdf(1.0, 0.0, 1.0)
        with pytest.raises(GenerationError):
            weibull_mode(1.0, -1.0)

    def test_pdf_negative_x_zero(self):
        assert weibull_pdf(-1.0, 2.0, 1.0) == 0.0

    @given(
        st.integers(1, 50),
        st.floats(0.5, 5.0),
        st.floats(0.5, 50.0),
        st.floats(0.5, 30.0),
    )
    def test_profile_peaks_at_requested_value(self, length, shape, scale, peak):
        profile = burst_profile(length, shape, scale, peak)
        assert len(profile) == length
        assert max(profile) == pytest.approx(peak)
        assert all(value >= 0.0 for value in profile)

    def test_profile_bad_args(self):
        with pytest.raises(GenerationError):
            burst_profile(0, 1.0, 1.0, 1.0)
        with pytest.raises(GenerationError):
            burst_profile(5, 1.0, 1.0, 0.0)


class TestZipfVocabulary:
    def test_size(self):
        vocab = ZipfVocabulary(size=100, extra_terms=["quake"])
        assert len(vocab) == 101
        assert "quake" in vocab.terms

    def test_head_terms_more_frequent(self):
        vocab = ZipfVocabulary(size=200)
        rng = random.Random(0)
        counts = {}
        for _ in range(20_000):
            token = vocab.sample(rng)
            counts[token] = counts.get(token, 0) + 1
        assert counts.get("term00000", 0) > counts.get("term00150", 0)

    def test_sample_document_length(self):
        vocab = ZipfVocabulary(size=50)
        doc = vocab.sample_document(random.Random(1), 12)
        assert len(doc) == 12

    def test_invalid_args(self):
        with pytest.raises(GenerationError):
            ZipfVocabulary(size=0)
        with pytest.raises(GenerationError):
            ZipfVocabulary(size=10, exponent=0.0)
        with pytest.raises(GenerationError):
            ZipfVocabulary(size=10).sample_document(random.Random(0), 0)


class TestGeneratorSettings:
    def test_bad_mode(self):
        with pytest.raises(GenerationError):
            GeneratorSettings(mode="bogus")

    def test_more_patterns_than_terms(self):
        with pytest.raises(GenerationError):
            GeneratorSettings(n_terms=5, n_patterns=6)

    def test_effective_support(self):
        assert GeneratorSettings(n_streams=100).effective_support == 5
        assert GeneratorSettings(n_streams=10_000).effective_support == 40
        assert GeneratorSettings(support_size=7).effective_support == 7


def small_settings(mode="dist", seed=5):
    return GeneratorSettings(
        mode=mode,
        timeline=60,
        n_streams=30,
        n_terms=100,
        n_patterns=12,
        seed=seed,
    )


class TestGenerateDataset:
    def test_deterministic(self):
        a = generate_dataset(small_settings())
        b = generate_dataset(small_settings())
        assert [p.term for p in a.patterns] == [p.term for p in b.patterns]
        term = a.patterns[0].term
        sid = next(iter(a.patterns[0].streams))
        assert a.sequence(term, sid) == b.sequence(term, sid)

    def test_pattern_terms_distinct(self):
        data = generate_dataset(small_settings())
        terms = [p.term for p in data.patterns]
        assert len(set(terms)) == len(terms)

    def test_injection_visible_in_sequences(self):
        data = generate_dataset(small_settings())
        for pattern in data.patterns[:5]:
            for sid in pattern.streams:
                seq = data.sequence(pattern.term, sid)
                inside = max(
                    seq[pattern.timeframe.start : pattern.timeframe.end + 1]
                )
                assert inside >= 1.0

    def test_timeframe_within_timeline(self):
        data = generate_dataset(small_settings())
        for pattern in data.patterns:
            assert 0 <= pattern.timeframe.start
            assert pattern.timeframe.end < data.timeline

    def test_stream_counts_in_bounds(self):
        settings = small_settings()
        data = generate_dataset(settings)
        lo, hi = settings.pattern_streams
        for pattern in data.patterns:
            assert lo <= len(pattern.streams) <= hi

    def test_distgen_patterns_more_local_than_randgen(self):
        """distGen's locality: mean pairwise member distance is smaller."""

        def mean_spread(data):
            spreads = []
            for pattern in data.patterns:
                pts = [data.locations[sid] for sid in pattern.streams]
                if len(pts) < 2:
                    continue
                total, pairs = 0.0, 0
                for i, a in enumerate(pts):
                    for b in pts[i + 1 :]:
                        total += a.distance_to(b)
                        pairs += 1
                spreads.append(total / pairs)
            return sum(spreads) / len(spreads)

        dist_data = generate_dataset(small_settings(mode="dist"))
        rand_data = generate_dataset(small_settings(mode="rand"))
        assert mean_spread(dist_data) < mean_spread(rand_data)

    def test_slice_at_consistent_with_sequence(self):
        data = generate_dataset(small_settings())
        term = data.patterns[0].term
        for t in range(0, data.timeline, 7):
            snapshot = data.slice_at(term, t)
            for sid, value in snapshot.items():
                assert data.sequence(term, sid)[t] == value

    def test_unknown_stream_sequence_zero(self):
        data = generate_dataset(small_settings())
        term = data.patterns[0].term
        assert data.sequence(term, "not-a-stream") == [0.0] * data.timeline

    def test_literal_mode_runs(self):
        data = generate_dataset(small_settings(mode="dist-literal"))
        assert data.patterns


class TestTopixCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_topix_corpus(
            CorpusSettings(
                n_countries=40,
                timeline=48,
                background_rate=1.0,
                events=MAJOR_EVENTS[:4],
                seed=2,
            )
        )

    def test_stream_count(self, corpus):
        assert len(corpus.collection) == 40

    def test_documents_exist(self, corpus):
        assert corpus.collection.document_count > 0

    def test_event_docs_tagged(self, corpus):
        tagged = [d for d in corpus.collection.documents() if d.event_id is not None]
        assert tagged
        for doc in tagged:
            assert doc.event_id in {e.event_id for e in corpus.events}

    def test_event_docs_contain_query_terms(self, corpus):
        from repro.streams import tokenize

        queries = {e.event_id: tokenize(e.query) for e in corpus.events}
        for doc in corpus.collection.documents():
            if doc.event_id is not None:
                for token in queries[doc.event_id]:
                    assert doc.frequency(token) >= 1

    def test_footprints_recorded(self, corpus):
        for event in corpus.events:
            assert corpus.event_footprints[event.event_id]

    def test_timeframes_cover_incidents(self, corpus):
        for event in corpus.events:
            first, last = corpus.event_timeframes[event.event_id]
            assert 0 <= first <= last < 48

    def test_queries_listing(self, corpus):
        assert corpus.queries()[0] == (1, "Obama")

    def test_deterministic(self):
        settings = CorpusSettings(
            n_countries=25, timeline=12, background_rate=0.5,
            events=MAJOR_EVENTS[:2], seed=9,
        )
        a = generate_topix_corpus(settings)
        b = generate_topix_corpus(settings)
        assert a.collection.document_count == b.collection.document_count

    def test_unknown_source_rejected(self):
        from repro.datagen.events import EventIncident, MajorEvent

        bad = MajorEvent(
            99, "bogus", "x", 3, 0.05,
            (EventIncident("Atlantis", 1, 2, 5.0),),
        )
        with pytest.raises(GenerationError):
            generate_topix_corpus(
                CorpusSettings(
                    n_countries=20, timeline=12, background_rate=0.1,
                    events=(bad,), seed=1,
                )
            )
