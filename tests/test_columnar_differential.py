"""Differential harness: columnar kernel == pure-Python reference.

The columnar storage layer's correctness contract mirrors the live
layer's: every externally observable structure — mined pattern sets,
tracker state, discrepancy rectangles, burst segments, posting lists,
top-k answers — must be *byte-identical* to the pure-Python reference
path on any input.  "Identical" is exact: float scores are compared
with ``==``, no tolerance, because the kernels are designed to perform
the same IEEE-754 operations in the same order.

These tests generate seeded random corpora and Hypothesis-driven
inputs (in the style of ``tests/test_live_differential.py``) and hold
the two paths equal at every layer the columnar kernel touches.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BatchMiner,
    BurstySearchEngine,
    Document,
    FrequencyTensor,
    Point,
    STLocal,
    SpatiotemporalCollection,
)
from repro.columnar.kernels import (
    batched_first_rectangles,
    max_rectangle_points,
    maximal_segment_state,
)
from repro.columnar.postings import PostingArray
from repro.core.config import STLocalConfig
from repro.live.index import DeltaPostingList, LiveIndex
from repro.search.inverted_index import Posting, PostingList
from repro.spatial.discrepancy import (
    WeightedPoint,
    max_weight_rectangle,
    max_weight_rectangle_bruteforce,
)
from repro.temporal.kleinberg import KleinbergBurstDetector
from repro.temporal.max_segments import (
    OnlineMaxSegments,
    maximal_segments,
    maximal_segments_bruteforce,
    maximal_segments_reference,
)

# ----------------------------------------------------------------------
# Corpus generation (seeded, bursty + ambient mixture)
# ----------------------------------------------------------------------


def build_corpus(seed, n_streams=9, timeline=28, n_terms=4):
    rng = random.Random(seed)
    collection = SpatiotemporalCollection(timeline=timeline)
    side = 3
    for i in range(n_streams):
        collection.add_stream(
            f"s{i}", Point(float(i % side) * 2.0, float(i // side) * 2.0)
        )
    doc_id = 0
    for index in range(n_terms):
        term = f"t{index}"
        # ambient chatter over random streams
        for _ in range(rng.randint(0, 25)):
            collection.add_document(
                Document(
                    doc_id,
                    f"s{rng.randint(0, n_streams - 1)}",
                    rng.randint(0, timeline - 1),
                    (term,) * rng.randint(1, 2),
                )
            )
            doc_id += 1
        # one localized burst
        start = rng.randint(0, timeline - 6)
        members = {rng.randint(0, n_streams - 1) for _ in range(3)}
        for t in range(start, start + rng.randint(2, 5)):
            for member in members:
                collection.add_document(
                    Document(doc_id, f"s{member}", t, (term,))
                )
                doc_id += 1
    return collection


def assert_trackers_equal(reference, columnar):
    assert reference.rectangle_history == columnar.rectangle_history
    assert reference.open_history == columnar.open_history
    assert reference._clock == columnar._clock
    assert reference._history == columnar._history
    assert reference._archived == columnar._archived
    assert set(reference._sequences) == set(columnar._sequences)
    for key, ref_seq in reference._sequences.items():
        col_seq = columnar._sequences[key]
        assert ref_seq.region == col_seq.region
        assert ref_seq.start == col_seq.start
        assert ref_seq.member_order == col_seq.member_order
        assert ref_seq.tracker._cumulative == col_seq.tracker._cumulative
        assert ref_seq.tracker._length == col_seq.tracker._length
        assert [
            (c.start, c.end, c.left_sum, c.right_sum)
            for c in ref_seq.tracker._candidates
        ] == [
            (c.start, c.end, c.left_sum, c.right_sum)
            for c in col_seq.tracker._candidates
        ]
    assert set(reference._models) == set(columnar._models)
    for sid, ref_model in reference._models.items():
        col_model = columnar._models[sid]
        assert ref_model._count == col_model._count
        assert ref_model._total == col_model._total


class TestMiningDifferential:
    def test_patterns_and_tracker_state_identical(self):
        for seed in range(12):
            collection = build_corpus(seed)
            tensor = FrequencyTensor(collection)
            locations = collection.locations()
            terms = sorted(tensor.terms)
            stlocal = STLocal()
            legacy = BatchMiner(stlocal=stlocal, columnar=False)
            columnar = BatchMiner(stlocal=stlocal, columnar=True)
            assert repr(
                columnar.mine_regional(tensor, terms, locations)
            ) == repr(legacy.mine_regional(tensor, terms, locations)), seed
            for term, tracker in legacy.regional_trackers(
                tensor, terms, locations
            ).items():
                columnar_tracker = columnar._columnar_trackers(
                    tensor, [term], locations
                )[term]
                assert_trackers_equal(tracker, columnar_tracker)

    def test_geometry_keyed_and_untruncated_sweeps(self):
        collection = build_corpus(99)
        tensor = FrequencyTensor(collection)
        locations = collection.locations()
        terms = sorted(tensor.terms)
        for config in (
            STLocalConfig(key_by_geometry=True),
            STLocalConfig(warmup=0),
            STLocalConfig(track_history=False),
        ):
            stlocal = STLocal(config)
            for truncate in (True, False):
                legacy = BatchMiner(
                    stlocal=stlocal, columnar=False, truncate_tails=truncate
                ).mine_regional(tensor, terms, locations)
                columnar = BatchMiner(
                    stlocal=stlocal, columnar=True, truncate_tails=truncate
                ).mine_regional(tensor, terms, locations)
                assert repr(columnar) == repr(legacy)

    def test_custom_baseline_falls_back_to_reference(self):
        from repro.temporal.baselines import EWMABaseline

        config = STLocalConfig(baseline_factory=EWMABaseline)
        collection = build_corpus(3)
        tensor = FrequencyTensor(collection)
        locations = collection.locations()
        terms = sorted(tensor.terms)
        stlocal = STLocal(config)
        assert repr(
            BatchMiner(stlocal=stlocal, columnar=True).mine_regional(
                tensor, terms, locations
            )
        ) == repr(
            BatchMiner(stlocal=stlocal, columnar=False).mine_regional(
                tensor, terms, locations
            )
        )

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_random_corpora(self, seed):
        collection = build_corpus(seed, n_streams=6, timeline=16, n_terms=2)
        tensor = FrequencyTensor(collection)
        locations = collection.locations()
        terms = sorted(tensor.terms)
        stlocal = STLocal()
        assert repr(
            BatchMiner(stlocal=stlocal, columnar=True).mine_regional(
                tensor, terms, locations
            )
        ) == repr(
            BatchMiner(stlocal=stlocal, columnar=False).mine_regional(
                tensor, terms, locations
            )
        )


# ----------------------------------------------------------------------
# Discrepancy grids
# ----------------------------------------------------------------------

weights = st.one_of(
    st.just(0.0),
    st.just(1.0),
    st.just(-1.0),
    # Magnitudes below 2^-10 collapse to zero: the Kadane kernels
    # compute rectangle sums as prefix-sum *differences*, and a weight
    # tiny enough to be absorbed by a larger prefix (e.g. a float32
    # subnormal next to -1.0) flips the strictly-positive existence
    # test versus the direct-summing brute force.  Bounded this way,
    # every float64 prefix sum of ≤ 12 float32 weights is exact
    # (24-bit mantissas, ≤ 12-bit exponent spread), so the
    # differential property is a theorem rather than an approximation.
    st.floats(-4.0, 4.0, allow_nan=False, width=32).map(
        lambda w: 0.0 if abs(w) < 2.0**-10 else w
    ),
)
coordinates = st.integers(0, 4).map(float)
point_list = st.lists(
    st.tuples(coordinates, coordinates, weights), min_size=1, max_size=12
)


class TestDiscrepancyDifferential:
    @settings(max_examples=120, deadline=None)
    @given(raw=point_list)
    def test_adaptive_kernel_matches_bruteforce(self, raw):
        import pytest

        points = [
            WeightedPoint(point=Point(x, y), weight=w, stream_id=i)
            for i, (x, y, w) in enumerate(raw)
        ]
        fast = max_weight_rectangle(points)
        slow = max_weight_rectangle_bruteforce(points)
        if fast is None:
            assert slow is None
            return
        assert slow is not None
        # The brute force sums member weights directly while the kernel
        # uses prefix-sum differences, so scores agree to rounding (the
        # seed's property tests used the same tolerance); exact float
        # equality between the scalar and vectorized kernels is pinned
        # by test_scalar_and_vector_kernels_identical below.
        assert fast.score == pytest.approx(slow.score)
        assert fast.score == pytest.approx(
            sum(wp.weight for wp in fast.members)
        )

    @settings(max_examples=100, deadline=None)
    @given(raw=point_list)
    def test_scalar_and_vector_kernels_identical(self, raw):
        import repro.columnar.kernels as kernels

        active = [(x, y, w) for x, y, w in raw if w != 0.0]
        xs = [x for x, _, _ in active]
        ys = [y for _, y, _ in active]
        ws = [w for _, _, w in active]
        scalar = max_rectangle_points(xs, ys, ws)
        threshold = kernels.SCALAR_GRID_CELLS
        kernels.SCALAR_GRID_CELLS = 0  # force the vectorized path
        try:
            vector = max_rectangle_points(xs, ys, ws)
        finally:
            kernels.SCALAR_GRID_CELLS = threshold
        assert scalar == vector

    @settings(max_examples=60, deadline=None)
    @given(
        raws=st.lists(point_list, min_size=1, max_size=4),
        extra_rows=st.integers(0, 3),
        extra_cols=st.integers(0, 3),
    )
    def test_batched_kernel_padding_is_inert(self, raws, extra_rows, extra_cols):
        """Zero padding must not change any grid's selected rectangle."""
        import numpy as np

        grids = []
        singles = []
        for raw in raws:
            active = [(x, y, w) for x, y, w in raw if w != 0.0]
            if not any(w > 0.0 for _, _, w in active):
                continue
            xs = sorted({x for x, _, _ in active})
            ys = sorted({y for _, y, _ in active})
            x_index = {x: i for i, x in enumerate(xs)}
            y_index = {y: i for i, y in enumerate(ys)}
            grid = [[0.0] * len(xs) for _ in ys]
            for x, y, w in active:
                grid[y_index[y]][x_index[x]] += w
            grids.append(grid)
            singles.append(
                max_rectangle_points(
                    [x for x, _, _ in active],
                    [y for _, y, _ in active],
                    [w for _, _, w in active],
                )
            )
        if not grids:
            return
        m_pad = max(len(g) for g in grids) + extra_rows
        k_pad = max(len(g[0]) for g in grids) + extra_cols
        tensor = np.zeros((len(grids), m_pad, k_pad))
        for i, grid in enumerate(grids):
            tensor[i, : len(grid), : len(grid[0])] = grid
        found, score, y_lo, y_hi, x_lo, x_hi = batched_first_rectangles(tensor)
        for i, single in enumerate(singles):
            assert bool(found[i]) == (single is not None)
            if single is None:
                continue
            grid = grids[i]
            xs = None  # bounds are grid indices here; compare via score
            assert float(score[i]) == single[0]


# ----------------------------------------------------------------------
# Burst segments
# ----------------------------------------------------------------------

score_values = st.one_of(
    st.just(0.0),
    st.floats(-2.0, 2.0, allow_nan=False, width=32),
)


class TestSegmentsDifferential:
    @settings(max_examples=150, deadline=None)
    @given(values=st.lists(score_values, max_size=40))
    def test_batch_kernel_matches_online(self, values):
        batch = [(s.start, s.end, s.score) for s in maximal_segments(values)]
        online = [
            (s.start, s.end, s.score)
            for s in maximal_segments_reference(values)
        ]
        assert batch == online

    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(
            st.integers(-20, 20).map(lambda v: v / 2.0), max_size=30
        )
    )
    def test_batch_kernel_matches_bruteforce(self, values):
        # Dyadic values keep every partial sum exact (the seed's
        # strategy), so the quadratic oracle's tie-breaking agrees.
        batch = [(s.start, s.end, s.score) for s in maximal_segments(values)]
        brute = [
            (s.start, s.end, s.score)
            for s in maximal_segments_bruteforce(values)
        ]
        assert [(s, e) for s, e, _ in batch] == [(s, e) for s, e, _ in brute]

    @settings(max_examples=100, deadline=None)
    @given(values=st.lists(score_values, max_size=40))
    def test_restore_reproduces_online_state(self, values):
        candidates, cumulative, length = maximal_segment_state(values)
        restored = OnlineMaxSegments.restore(candidates, cumulative, length)
        online = OnlineMaxSegments()
        online.extend(values)
        assert restored._cumulative == online._cumulative
        assert restored._length == online._length
        assert [
            (c.start, c.end, c.left_sum, c.right_sum)
            for c in restored._candidates
        ] == [
            (c.start, c.end, c.left_sum, c.right_sum)
            for c in online._candidates
        ]
        # ...and the restored tracker keeps advancing identically.
        for extra in (1.0, -0.5, 0.25):
            restored.add(extra)
            online.add(extra)
        assert restored.segments() == online.segments()

    @settings(max_examples=80, deadline=None)
    @given(
        frequencies=st.lists(st.integers(0, 12), max_size=30),
        with_totals=st.booleans(),
    )
    def test_kleinberg_fast_matches_reference(self, frequencies, with_totals):
        detector = KleinbergBurstDetector(scaling=2.5, gamma=0.7)
        totals = (
            [f + 5 for f in frequencies] if with_totals and frequencies else None
        )
        fast = detector.detect(frequencies, totals)
        reference = detector.detect_reference(frequencies, totals)
        assert [(s.start, s.end, s.score) for s in fast] == [
            (s.start, s.end, s.score) for s in reference
        ]


# ----------------------------------------------------------------------
# Postings and top-k
# ----------------------------------------------------------------------

posting_lists = st.lists(
    st.tuples(st.integers(0, 30), st.floats(-5.0, 5.0, allow_nan=False, width=32)),
    max_size=25,
).map(lambda raw: [Posting(doc_id, score) for doc_id, score in raw])


class TestPostingDifferential:
    @settings(max_examples=100, deadline=None)
    @given(postings=posting_lists)
    def test_posting_array_matches_posting_list(self, postings):
        # Deduplicate doc ids (the protocol assumes one entry per doc).
        unique = {p.doc_id: p for p in postings}
        postings = list(unique.values())
        reference = PostingList(postings)
        columnar = PostingArray.from_postings(postings)
        assert len(reference) == len(columnar)
        assert [(p.doc_id, p.score) for p in reference] == [
            (p.doc_id, p.score) for p in columnar
        ]
        for rank in range(len(reference) + 2):
            ref = reference.sorted_access(rank)
            col = columnar.sorted_access(rank)
            assert (ref is None) == (col is None)
            if ref is not None:
                assert (ref.doc_id, ref.score) == (col.doc_id, col.score)
        for posting in postings:
            assert reference.random_access(
                posting.doc_id
            ) == columnar.random_access(posting.doc_id)
        assert columnar.random_access("missing") is None
        depth = len(postings) // 2
        truncated_ref = reference.truncated(depth)
        truncated_col = columnar.truncated(depth)
        assert [(p.doc_id, p.score) for p in truncated_ref] == [
            (p.doc_id, p.score) for p in truncated_col
        ]
        for posting in postings:
            assert truncated_col.random_access(posting.doc_id) is not None

    @settings(max_examples=80, deadline=None)
    @given(base=posting_lists, delta=posting_lists)
    def test_columnar_merge_matches_delta_compaction(self, base, delta):
        base_ids = {p.doc_id for p in base}
        base = list({p.doc_id: p for p in base}.values())
        delta = [
            p
            for p in {p.doc_id: p for p in delta}.values()
            if p.doc_id not in base_ids
        ]
        reference = DeltaPostingList(
            PostingList(base), PostingList(delta)
        ).compact()
        columnar = PostingArray.from_postings(base).merged_with(
            PostingArray.from_postings(delta)
        )
        assert [(p.doc_id, p.score) for p in reference] == [
            (p.doc_id, p.score) for p in columnar
        ]

    def test_live_compaction_columnar_equals_reference(self):
        rng = random.Random(17)
        columnar_index = LiveIndex(compaction_threshold=4)
        columnar_index.set_base(
            "t", [Posting(f"b{i}", rng.uniform(0, 5)) for i in range(6)]
        )
        mirror_base = list(columnar_index.get("t"))
        deltas = [Posting(f"d{i}", rng.uniform(0, 5)) for i in range(8)]
        columnar_index.append_delta("t", deltas[:4])  # triggers compaction
        assert columnar_index.compactions == 1
        reference = DeltaPostingList(
            PostingList(mirror_base), PostingList(deltas[:4])
        ).compact()
        assert [(p.doc_id, p.score) for p in columnar_index.get("t")] == [
            (p.doc_id, p.score) for p in reference
        ]


class TestSearchDifferential:
    def test_postings_and_topk_identical(self):
        for seed in (0, 5, 9):
            collection = build_corpus(seed)
            tensor = FrequencyTensor(collection)
            terms = sorted(tensor.terms)
            mined = BatchMiner().mine_regional(
                tensor, terms, collection.locations()
            )
            legacy = BurstySearchEngine(collection, mined, columnar=False)
            columnar = BurstySearchEngine(collection, mined, columnar=True)
            for term in terms:
                assert [
                    (p.doc_id, p.score) for p in legacy._posting_list(term)
                ] == [
                    (p.doc_id, p.score) for p in columnar._posting_list(term)
                ], (seed, term)
                for k in (1, 3, 10):
                    assert [
                        (r.document.doc_id, r.score)
                        for r in legacy.search(term, k)
                    ] == [
                        (r.document.doc_id, r.score)
                        for r in columnar.search(term, k)
                    ], (seed, term, k)

    def test_custom_aggregate_falls_back_to_reference(self):
        collection = build_corpus(2)
        tensor = FrequencyTensor(collection)
        terms = sorted(tensor.terms)
        mined = BatchMiner().mine_regional(
            tensor, terms, collection.locations()
        )
        legacy = BurstySearchEngine(
            collection, mined, aggregate=sum, columnar=False
        )
        columnar = BurstySearchEngine(
            collection, mined, aggregate=sum, columnar=True
        )
        for term in terms:
            assert [
                (p.doc_id, p.score) for p in legacy._posting_list(term)
            ] == [(p.doc_id, p.score) for p in columnar._posting_list(term)]
