"""Inverted index, Threshold Algorithm, and the search engines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CombinatorialPattern, STComb, STLocal
from repro.errors import SearchError
from repro.intervals import Interval
from repro.search import (
    BurstySearchEngine,
    InvertedIndex,
    Posting,
    PostingList,
    TemporalSearchEngine,
    binary_relevance,
    exhaustive_topk,
    log_relevance,
    raw_relevance,
    threshold_topk,
)
from repro.spatial import Point
from repro.streams import Document, SpatiotemporalCollection


class TestRelevance:
    def test_log_relevance(self):
        doc = Document(1, "us", 0, ("a", "a", "b"))
        import math

        assert log_relevance(doc, "a") == pytest.approx(math.log(3))
        assert log_relevance(doc, "z") == 0.0

    def test_raw_and_binary(self):
        doc = Document(1, "us", 0, ("a", "a"))
        assert raw_relevance(doc, "a") == 2.0
        assert binary_relevance(doc, "a") == 1.0
        assert binary_relevance(doc, "z") == 0.0


class TestPostingList:
    def test_sorted_access_descending(self):
        plist = PostingList([Posting("a", 1.0), Posting("b", 3.0), Posting("c", 2.0)])
        scores = [plist.sorted_access(i).score for i in range(3)]
        assert scores == [3.0, 2.0, 1.0]

    def test_sorted_access_past_end(self):
        plist = PostingList([Posting("a", 1.0)])
        assert plist.sorted_access(5) is None

    def test_random_access(self):
        plist = PostingList([Posting("a", 1.0)])
        assert plist.random_access("a") == 1.0
        assert plist.random_access("z") is None

    def test_top(self):
        plist = PostingList([Posting(i, float(i)) for i in range(5)])
        assert [p.doc_id for p in plist.top(2)] == [4, 3]

    def test_index_registration(self):
        index = InvertedIndex()
        index.add("t", [Posting("a", 1.0)])
        assert "t" in index
        assert index.get("t") is not None
        assert index.get("z") is None
        assert index.terms() == ["t"]
        assert len(index) == 1


def _lists_from_spec(spec):
    """spec: list of dicts doc->score."""
    return [
        PostingList([Posting(doc, score) for doc, score in entries.items()])
        for entries in spec
    ]


class TestThresholdAlgorithm:
    def test_invalid_k(self):
        with pytest.raises(SearchError):
            threshold_topk(_lists_from_spec([{"a": 1.0}]), 0)

    def test_no_lists(self):
        with pytest.raises(SearchError):
            threshold_topk([], 3)

    def test_single_list(self):
        lists = _lists_from_spec([{"a": 1.0, "b": 5.0, "c": 3.0}])
        results, _ = threshold_topk(lists, 2)
        assert [r.doc_id for r in results] == ["b", "c"]

    def test_conjunctive_semantics(self):
        """Docs missing from any list are excluded (Eq. 11's −∞)."""
        lists = _lists_from_spec([{"a": 9.0, "b": 1.0}, {"b": 1.0, "c": 9.0}])
        results, _ = threshold_topk(lists, 5)
        assert [r.doc_id for r in results] == ["b"]
        assert results[0].score == pytest.approx(2.0)

    def test_early_termination_saves_accesses(self):
        entries = {f"d{i:03d}": float(1000 - i) for i in range(1000)}
        lists = _lists_from_spec([entries])
        _, accesses = threshold_topk(lists, 5)
        assert accesses < 1000

    @settings(max_examples=60)
    @given(
        st.lists(
            st.dictionaries(
                st.integers(0, 20),
                st.floats(0.0, 10.0, allow_nan=False),
                max_size=12,
            ),
            min_size=1,
            max_size=3,
        ),
        st.integers(1, 8),
    )
    def test_ta_matches_exhaustive(self, spec, k):
        lists = _lists_from_spec(spec)
        ta_results, _ = threshold_topk(lists, k)
        reference = exhaustive_topk(lists, k)
        assert [r.doc_id for r in ta_results] == [r.doc_id for r in reference]
        for ta, ref in zip(ta_results, reference):
            assert ta.score == pytest.approx(ref.score)


class TestThresholdRegressions:
    """Stopping-rule defects of the original implementation.

    Both scenarios return a provably wrong top-1 when (a) exhausted
    lists stop contributing to the threshold, or (b) the stop test uses
    ``>=`` against the threshold.
    """

    def test_exhausted_list_keeps_bounding_unseen_documents(self):
        """A pruned list exhausts early; its final score must stay in
        the threshold or TA stops before finding the true winner."""
        full = PostingList([Posting("x", 10.0), Posting("y", 9.0)])
        pruned = full.truncated(1)  # sorted access sees only x
        other = PostingList(
            [
                Posting("d1", 3.0),
                Posting("d2", 2.9),
                Posting("y", 2.5),
                Posting("x", 0.1),
            ]
        )
        ta_results, _ = threshold_topk([pruned, other], 1)
        reference = exhaustive_topk([pruned, other], 1)
        # y = 9.0 + 2.5 beats x = 10.0 + 0.1; the understated threshold
        # (2.9 after the pruned list exhausts) used to stop at x.
        assert [r.doc_id for r in reference] == ["y"]
        assert [r.doc_id for r in ta_results] == ["y"]
        assert ta_results[0].score == pytest.approx(11.5)

    def test_threshold_tie_resolved_by_deterministic_tiebreak(self):
        """An unseen document tying the k-th aggregate can still win the
        document-id tiebreak; stopping at ``>=`` returned the loser."""
        from repro.search.inverted_index import rank_tiebreak

        pool = sorted((f"doc{i}" for i in range(200)), key=rank_tiebreak)
        b1, b2, a2, a3, y, w = (*pool[:5], pool[-1])
        list_a = _lists_from_spec([{w: 5.0, a2: 3.0, a3: 3.0, y: 3.0}])[0]
        list_b = _lists_from_spec([{b1: 3.0, b2: 3.0, y: 3.0, w: 1.0}])[0]
        # Totals tie at 6.0 for w (5+1) and y (3+3); y wins the tiebreak
        # but is unseen when the threshold first equals the top score.
        ta_results, _ = threshold_topk([list_a, list_b], 1)
        reference = exhaustive_topk([list_a, list_b], 1)
        assert [r.doc_id for r in reference] == [y]
        assert [r.doc_id for r in ta_results] == [y]

    def test_empty_list_excludes_everything(self):
        lists = [
            PostingList([]),
            PostingList([Posting("a", 2.0), Posting("b", 1.0)]),
        ]
        results, _ = threshold_topk(lists, 3)
        assert results == []
        assert exhaustive_topk(lists, 3) == []

    @settings(max_examples=120)
    @given(
        st.lists(
            st.dictionaries(
                st.integers(0, 15),
                # Small integer scores force heavy score ties.
                st.integers(-3, 6).map(float),
                max_size=10,
            ),
            min_size=1,
            max_size=4,
        ),
        st.integers(1, 6),
        st.randoms(use_true_random=False),
    )
    def test_ta_exact_under_ties_negatives_and_truncation(
        self, spec, k, rng
    ):
        """TA must equal the exhaustive ranking *exactly* — same ids in
        the same order — under ties, negative scores, and pruning."""
        lists = []
        for plist in _lists_from_spec(spec):
            if len(plist) and rng.random() < 0.4:
                plist = plist.truncated(rng.randint(1, len(plist)))
            lists.append(plist)
        ta_results, _ = threshold_topk(lists, k)
        reference = exhaustive_topk(lists, k)
        assert [(r.doc_id, r.score) for r in ta_results] == [
            (r.doc_id, r.score) for r in reference
        ]


def build_event_collection():
    """Tiny corpus: event on s0/s1 weeks 5-7; ambient mention on s2."""
    coll = SpatiotemporalCollection(timeline=12)
    for i, sid in enumerate(("s0", "s1", "s2")):
        coll.add_stream(sid, Point(float(i), 0.0))
    doc_id = 0
    for sid in ("s0", "s1", "s2"):
        for t in range(12):
            coll.add_document(Document(doc_id, sid, t, ("filler", "news")))
            doc_id += 1
    event_docs = []
    for sid in ("s0", "s1"):
        for t in (5, 6, 7):
            doc = Document(doc_id, sid, t, ("quake", "quake", "damage"), event_id=1)
            coll.add_document(doc)
            event_docs.append(doc)
            doc_id += 1
    coll.add_document(Document(doc_id, "s2", 1, ("quake", "history")))
    return coll, event_docs


class TestBurstySearchEngine:
    def test_retrieves_event_documents(self):
        coll, event_docs = build_event_collection()
        patterns = STComb().mine(coll, terms=["quake"])
        engine = BurstySearchEngine(coll, patterns)
        hits = engine.search("quake", k=6)
        assert hits
        hit_ids = {hit.document.doc_id for hit in hits}
        event_ids = {doc.doc_id for doc in event_docs}
        assert hit_ids <= event_ids | {coll.document_count - 1}
        # Every returned document actually contains the term.
        for hit in hits:
            assert hit.document.frequency("quake") > 0

    def test_scores_descending(self):
        coll, _ = build_event_collection()
        patterns = STComb().mine(coll, terms=["quake"])
        engine = BurstySearchEngine(coll, patterns)
        hits = engine.search("quake", k=10)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_empty_query_rejected(self):
        coll, _ = build_event_collection()
        engine = BurstySearchEngine(coll, {})
        with pytest.raises(SearchError):
            engine.search("   ", k=3)

    def test_term_without_patterns_returns_nothing(self):
        coll, _ = build_event_collection()
        engine = BurstySearchEngine(coll, {})
        assert engine.search("quake", k=3) == []

    def test_multi_term_query_conjunctive(self):
        coll, event_docs = build_event_collection()
        patterns = STComb().mine(coll, terms=["quake", "damage"])
        engine = BurstySearchEngine(coll, patterns)
        hits = engine.search("quake damage", k=10)
        for hit in hits:
            assert hit.document.frequency("quake") > 0
            assert hit.document.frequency("damage") > 0

    def test_regional_patterns_work_too(self):
        coll, event_docs = build_event_collection()
        patterns = STLocal().mine(coll, terms=["quake"])
        engine = BurstySearchEngine(coll, patterns)
        hits = engine.search("quake", k=5)
        assert hits

    def test_custom_aggregate(self):
        coll, _ = build_event_collection()
        patterns = STComb().mine(coll, terms=["quake"])
        engine_max = BurstySearchEngine(coll, patterns)
        engine_min = BurstySearchEngine(coll, patterns, aggregate=min)
        assert engine_max.search("quake", k=3)
        assert engine_min.search("quake", k=3)


class TestQueryNormalization:
    """Duplicate / reordered query terms (the double-count regression)."""

    def test_duplicate_term_not_double_counted(self):
        coll, _ = build_event_collection()
        patterns = STComb().mine(coll, terms=["quake"])
        engine = BurstySearchEngine(coll, patterns)
        single = [(h.document.doc_id, h.score) for h in engine.search("quake", k=8)]
        repeated = [
            (h.document.doc_id, h.score)
            for h in engine.search("quake quake quake", k=8)
        ]
        assert repeated == single

    def test_term_order_does_not_change_results(self):
        coll, _ = build_event_collection()
        patterns = STComb().mine(coll, terms=["quake", "damage"])
        engine = BurstySearchEngine(coll, patterns)
        forward = [(h.document.doc_id, h.score) for h in engine.search("quake damage", k=8)]
        backward = [(h.document.doc_id, h.score) for h in engine.search("damage quake", k=8)]
        assert forward == backward


class TestEngineStrategies:
    def test_all_strategies_identical_through_engine(self):
        coll, _ = build_event_collection()
        patterns = STComb().mine(coll, terms=["quake", "damage"])
        engine = BurstySearchEngine(coll, patterns)
        reference = [
            (h.document.doc_id, h.score)
            for h in engine.search("quake damage", k=8, strategy="ta")
        ]
        for strategy in ("auto", "blockmax", "scan"):
            assert [
                (h.document.doc_id, h.score)
                for h in engine.search("quake damage", k=8, strategy=strategy)
            ] == reference

    def test_unknown_strategy_rejected(self):
        coll, _ = build_event_collection()
        with pytest.raises(SearchError):
            BurstySearchEngine(coll, {}, strategy="quantum")
        engine = BurstySearchEngine(coll, {})
        with pytest.raises(SearchError):
            engine.search("quake", k=3, strategy="quantum")

    def test_search_many_matches_search(self):
        coll, _ = build_event_collection()
        patterns = STComb().mine(coll, terms=["quake", "damage"])
        engine = BurstySearchEngine(coll, patterns)
        queries = ["quake", "quake damage", "damage"]
        batched = engine.search_many(queries, k=6)
        for query, results in zip(queries, batched):
            solo = engine.search(query, k=6)
            assert [(h.document.doc_id, h.score) for h in results] == [
                (h.document.doc_id, h.score) for h in solo
            ]

    def test_search_many_rejects_empty_query(self):
        coll, _ = build_event_collection()
        engine = BurstySearchEngine(coll, {})
        with pytest.raises(SearchError):
            engine.search_many(["quake", "  "], k=3)


class TestTemporalSearchEngine:
    def test_tb_ignores_location(self):
        coll, event_docs = build_event_collection()
        engine = TemporalSearchEngine(coll)
        hits = engine.search("quake", k=6)
        assert hits
        # The burst window 5-7 dominates the merged stream; retrieved
        # docs come from inside it.
        for hit in hits:
            assert 5 <= hit.document.timestamp <= 7

    def test_patterns_cached(self):
        coll, _ = build_event_collection()
        engine = TemporalSearchEngine(coll)
        first = engine.patterns_for("quake")
        second = engine.patterns_for("quake")
        assert first is second

    def test_temporal_pattern_overlap(self):
        from repro.search import TemporalPattern

        pattern = TemporalPattern("quake", Interval(5, 7), 0.5)
        assert pattern.overlaps(Document(1, "anywhere", 6, ()))
        assert not pattern.overlaps(Document(1, "anywhere", 8, ()))


class TestPostingListEdgeCases:
    def test_empty_list(self):
        plist = PostingList([])
        assert len(plist) == 0
        assert plist.sorted_access(0) is None
        assert plist.random_access("a") is None
        assert plist.top(3) == []
        assert list(plist) == []

    def test_truncated_empty_list(self):
        truncated = PostingList([]).truncated(5)
        assert len(truncated) == 0
        assert truncated.sorted_access(0) is None

    def test_truncated_depth_zero(self):
        plist = PostingList([Posting("a", 2.0), Posting("b", 1.0)])
        pruned = plist.truncated(0)
        # Sorted access sees nothing...
        assert pruned.sorted_access(0) is None
        assert len(pruned) == 0
        # ...but random access still resolves every original document.
        assert pruned.random_access("a") == 2.0
        assert pruned.random_access("b") == 1.0

    def test_truncated_depth_beyond_length(self):
        plist = PostingList([Posting("a", 2.0), Posting("b", 1.0)])
        pruned = plist.truncated(10)
        assert [p.doc_id for p in pruned] == [p.doc_id for p in plist]

    def test_truncated_keeps_best_prefix(self):
        plist = PostingList(
            [Posting("a", 1.0), Posting("b", 3.0), Posting("c", 2.0)]
        )
        pruned = plist.truncated(2)
        assert [p.doc_id for p in pruned] == ["b", "c"]
        assert pruned.random_access("a") == 1.0

    def test_duplicate_scores_order_deterministic(self):
        # Equal scores fall back to the hash tiebreak: any insertion
        # order must produce the same ranking.
        postings = [Posting(f"d{i}", 1.5) for i in range(8)]
        forward = PostingList(postings)
        backward = PostingList(list(reversed(postings)))
        assert [p.doc_id for p in forward] == [p.doc_id for p in backward]

    def test_truncation_with_duplicate_scores_stable(self):
        postings = [Posting(f"d{i}", 1.5) for i in range(8)]
        full_order = [p.doc_id for p in PostingList(postings)]
        pruned = PostingList(list(reversed(postings))).truncated(3)
        assert [p.doc_id for p in pruned] == full_order[:3]


class TestInvertedIndexGuards:
    def test_duplicate_add_rejected(self):
        index = InvertedIndex()
        index.add("t", [Posting("a", 1.0)])
        with pytest.raises(SearchError):
            index.add("t", [Posting("b", 2.0)])
        # The original list survives the rejected overwrite.
        assert index.get("t").random_access("a") == 1.0

    def test_explicit_replace_allowed(self):
        index = InvertedIndex()
        index.add("t", [Posting("a", 1.0)])
        index.add("t", [Posting("b", 2.0)], replace=True)
        assert index.get("t").random_access("a") is None
        assert index.get("t").random_access("b") == 2.0

    def test_discard_and_clear(self):
        index = InvertedIndex()
        index.add("t", [Posting("a", 1.0)])
        index.add("u", [Posting("b", 1.0)])
        assert index.discard("t") is True
        assert index.discard("t") is False
        index.clear()
        assert len(index) == 0


class TestEngineStalenessRegressions:
    """The build-once engines must notice collection mutations.

    Before the fix, posting lists, ``_doc_map`` and the TB pattern
    cache were built once and served forever: a document appended after
    the first query was invisible (or worse, inconsistently visible).
    """

    def test_bursty_engine_sees_documents_added_after_first_query(self):
        coll, _ = build_event_collection()
        patterns = STComb().mine(coll, terms=["quake"])
        engine = BurstySearchEngine(coll, patterns)
        before = engine.search("quake", k=20)
        # A very heavy on-event document lands inside the mined window.
        new_doc = Document(
            9999, "s0", 6, ("quake",) * 12, event_id=1
        )
        coll.add_document(new_doc)
        after = engine.search("quake", k=20)
        assert 9999 in {hit.document.doc_id for hit in after}
        assert 9999 not in {hit.document.doc_id for hit in before}

    def test_doc_map_refreshed_not_just_postings(self):
        coll, _ = build_event_collection()
        patterns = STComb().mine(coll, terms=["quake"])
        engine = BurstySearchEngine(coll, patterns)
        engine.search("quake", k=5)  # builds the doc map
        coll.add_document(Document(9999, "s1", 6, ("quake", "quake")))
        # Before the fix this raised KeyError (stale _doc_map) or
        # silently omitted the new document (stale postings).
        hits = engine.search("quake", k=50)
        assert any(hit.document.doc_id == 9999 for hit in hits)

    def test_precompute_after_mutation_rebuilds(self):
        coll, _ = build_event_collection()
        patterns = STComb().mine(coll, terms=["quake"])
        engine = BurstySearchEngine(coll, patterns, precompute=True)
        coll.add_document(Document(9999, "s0", 6, ("quake",) * 3, event_id=1))
        built = engine.precompute()
        assert built >= 1  # the stale index was dropped and rebuilt
        hits = engine.search("quake", k=50)
        assert any(hit.document.doc_id == 9999 for hit in hits)

    def test_temporal_engine_pattern_cache_invalidated(self):
        coll, _ = build_event_collection()
        engine = TemporalSearchEngine(coll)
        stale_patterns = engine.patterns_for("quake")
        doc_id = 10_000
        # A bigger burst later in the timeline changes the merged
        # sequence and thus the detected temporal patterns.
        for t in (9, 10):
            for _ in range(12):
                coll.add_document(Document(doc_id, "s2", t, ("quake", "quake")))
                doc_id += 1
        fresh_patterns = engine.patterns_for("quake")
        assert fresh_patterns != stale_patterns
        hits = engine.search("quake", k=10)
        assert any(hit.document.timestamp in (9, 10) for hit in hits)

    def test_unchanged_collection_keeps_caches(self):
        coll, _ = build_event_collection()
        engine = TemporalSearchEngine(coll)
        first = engine.patterns_for("quake")
        engine.search("quake", k=3)
        assert engine.patterns_for("quake") is first  # still cached
