"""STComb end-to-end behaviour on controlled collections."""

import pytest

from repro.core import STComb, STCombConfig
from repro.errors import ConfigurationError
from repro.intervals import Interval
from repro.spatial import Point
from repro.streams import Document, FrequencyTensor, SpatiotemporalCollection
from repro.temporal import KleinbergBurstDetector


def build_collection(event_streams, event_window, timeline=20, noise=None):
    """Collection with a synchronised burst of 'quake' on given streams."""
    coll = SpatiotemporalCollection(timeline=timeline)
    all_streams = ["s0", "s1", "s2", "s3", "s4", "s5"]
    for index, sid in enumerate(all_streams):
        coll.add_stream(sid, Point(float(index), 0.0))
    doc_id = 0
    for sid in all_streams:
        for t in range(timeline):
            coll.add_document(Document(doc_id, sid, t, ("filler",)))
            doc_id += 1
    for sid in event_streams:
        for t in event_window:
            for _ in range(5):
                coll.add_document(Document(doc_id, sid, t, ("quake",)))
                doc_id += 1
    if noise:
        for sid, t in noise:
            coll.add_document(Document(doc_id, sid, t, ("quake",)))
            doc_id += 1
    return coll


class TestSTComb:
    def test_recovers_event_streams(self):
        coll = build_collection(["s0", "s1", "s2"], Interval(8, 12))
        pattern = STComb().top_pattern(coll, "quake")
        assert pattern is not None
        assert pattern.streams == frozenset({"s0", "s1", "s2"})
        assert pattern.timeframe == Interval(8, 12)
        assert pattern.term == "quake"

    def test_unknown_term_no_pattern(self):
        coll = build_collection(["s0"], Interval(5, 6))
        assert STComb().top_pattern(coll, "nonexistent") is None

    def test_score_is_sum_of_member_bursts(self):
        coll = build_collection(["s0", "s1"], Interval(8, 12))
        pattern = STComb().top_pattern(coll, "quake")
        assert pattern.score == pytest.approx(
            sum(score for _, _, score in pattern.member_intervals)
        )

    def test_tensor_and_collection_agree(self):
        coll = build_collection(["s0", "s1"], Interval(4, 7))
        from_coll = STComb().top_pattern(coll, "quake")
        from_tensor = STComb().top_pattern(FrequencyTensor(coll), "quake")
        assert from_coll.streams == from_tensor.streams
        assert from_coll.timeframe == from_tensor.timeframe
        assert from_coll.score == pytest.approx(from_tensor.score)

    def test_multiple_patterns_disjoint_in_time(self):
        coll = SpatiotemporalCollection(timeline=30)
        coll.add_stream("a", Point(0, 0))
        coll.add_stream("b", Point(1, 0))
        doc_id = 0
        for sid, window in (("a", range(3, 6)), ("b", range(3, 6)),
                            ("a", range(20, 23)), ("b", range(20, 23))):
            for t in window:
                for _ in range(4):
                    coll.add_document(Document(doc_id, sid, t, ("x",)))
                    doc_id += 1
        patterns = STComb().patterns_for_term(coll, "x")
        assert len(patterns) == 2
        frames = sorted(p.timeframe for p in patterns)
        assert frames[0].end < frames[1].start

    def test_max_patterns_config(self):
        coll = build_collection(["s0", "s1"], Interval(2, 4),
                                noise=[("s3", 15), ("s4", 18)])
        config = STCombConfig(max_patterns=1)
        patterns = STComb(config=config).patterns_for_term(coll, "quake")
        assert len(patterns) == 1

    def test_min_interval_score_filters_noise(self):
        # s3 mentions the term twice, far apart: each isolated mention
        # is a bursty interval with B_T = 1/2 − 1/20 = 0.45, well below
        # the event streams' 15/15 − 3/20 = 0.85.
        coll = build_collection(["s0", "s1"], Interval(2, 4),
                                noise=[("s3", 3), ("s3", 15)])
        loose = STComb().top_pattern(coll, "quake")
        strict = STComb(config=STCombConfig(min_interval_score=0.6)).top_pattern(
            coll, "quake"
        )
        assert "s3" in loose.streams
        assert "s3" not in strict.streams
        assert {"s0", "s1"} <= set(strict.streams)

    def test_min_pattern_streams(self):
        coll = build_collection(["s0"], Interval(2, 4))
        config = STCombConfig(min_pattern_streams=2)
        assert STComb(config=config).patterns_for_term(coll, "quake") == []

    def test_mine_many_terms(self):
        coll = build_collection(["s0", "s1"], Interval(8, 12))
        mined = STComb().mine(coll, terms=["quake", "filler", "nothing"])
        assert "quake" in mined
        assert "nothing" not in mined

    def test_pluggable_kleinberg_detector(self):
        coll = build_collection(["s0", "s1", "s2"], Interval(8, 12))
        detector = KleinbergBurstDetector(scaling=2.5, gamma=0.3)
        pattern = STComb(detector=detector).top_pattern(coll, "quake")
        assert pattern is not None
        assert {"s0", "s1", "s2"} <= set(pattern.streams)
        assert pattern.timeframe.intersects(Interval(8, 12))

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            STCombConfig(min_pattern_streams=0)
        with pytest.raises(ConfigurationError):
            STCombConfig(max_patterns=0)
