"""Per-rule fixture tests for the static invariant analyzer.

Each rule gets a fixture module seeded with known violations (marked
``# M:<tag>`` on the offending line) and a clean twin spelling each
pattern the compliant way.  Fixtures are read as text and analyzed
under *fake* repo-like paths, so the default scoping (kernel modules,
store codecs, the mmap read boundary) is exercised without depending on
where the test suite runs from.
"""

import os

from repro.analysis import check_source, default_config

FIXTURES = os.path.join(
    os.path.dirname(__file__), "fixtures", "analysis"
)

#: Fake paths placing a fixture inside each rule's default scope.
KERNEL_PATH = "src/repro/columnar/fixture.py"
STORE_PATH = "src/repro/store/fixture.py"
BOUNDARY_PATH = "src/repro/store/format.py"
LIVE_PATH = "src/repro/live/fixture.py"
NEUTRAL_PATH = "src/repro/eval/fixture.py"


def read_fixture(name):
    with open(os.path.join(FIXTURES, name), encoding="utf-8") as handle:
        return handle.read()


def run_fixture(name, path, rule):
    source = read_fixture(name)
    config = default_config(select=frozenset([rule]))
    active, suppressed = check_source(source, path, config)
    return source, active, suppressed


def marked_lines(source, *tags):
    """1-based line of each ``# M:<tag>`` marker, in tag order."""
    lines = {}
    for number, text in enumerate(source.splitlines(), start=1):
        for tag in tags:
            if f"M:{tag}" in text:
                lines[tag] = number
    missing = set(tags) - set(lines)
    if missing:
        raise AssertionError(f"markers not found: {sorted(missing)}")
    return [lines[tag] for tag in tags]


class TestDeterminism:
    TAGS = (
        "clock",
        "global-rng",
        "np-global-rng",
        "unseeded",
        "set-for",
        "set-listcomp",
    )

    def test_violations_line_exact(self):
        source, active, _ = run_fixture(
            "determinism_violation.py", KERNEL_PATH, "determinism"
        )
        assert sorted(f.line for f in active) == sorted(
            marked_lines(source, *self.TAGS)
        )
        assert {f.rule for f in active} == {"determinism"}

    def test_clean_twin(self):
        _, active, _ = run_fixture(
            "determinism_clean.py", KERNEL_PATH, "determinism"
        )
        assert active == []

    def test_out_of_scope_path_not_checked(self):
        _, active, _ = run_fixture(
            "determinism_violation.py", NEUTRAL_PATH, "determinism"
        )
        assert active == []


class TestMmapSafety:
    def test_violations_line_exact(self):
        source, active, _ = run_fixture(
            "mmap_violation.py", KERNEL_PATH, "mmap-safety"
        )
        expected = marked_lines(
            source,
            "raw-load",
            "subscript-write",
            "augassign",
            "inplace-sort",
            "unfreeze",
            "out-buffer",
            "attr-subscript-write",
        )
        assert sorted(f.line for f in active) == sorted(expected)

    def test_boundary_without_freeze(self):
        source, active, _ = run_fixture(
            "mmap_boundary_violation.py", BOUNDARY_PATH, "mmap-safety"
        )
        [expected] = marked_lines(source, "no-freeze")
        assert [f.line for f in active] == [expected]
        assert "writeable" in active[0].message

    def test_clean_boundary(self):
        _, active, _ = run_fixture(
            "mmap_clean.py", BOUNDARY_PATH, "mmap-safety"
        )
        assert active == []


class TestDtypeDiscipline:
    TAGS = (
        "python-float",
        "native-int64",
        "native-float64",
        "astype-int",
        "orderless-string",
    )

    def test_violations_line_exact(self):
        source, active, _ = run_fixture(
            "dtype_violation.py", STORE_PATH, "dtype-discipline"
        )
        assert sorted(f.line for f in active) == sorted(
            marked_lines(source, *self.TAGS)
        )

    def test_clean_twin(self):
        _, active, _ = run_fixture(
            "dtype_clean.py", STORE_PATH, "dtype-discipline"
        )
        assert active == []

    def test_rule_is_store_scoped(self):
        _, active, _ = run_fixture(
            "dtype_violation.py", NEUTRAL_PATH, "dtype-discipline"
        )
        assert active == []


class TestExceptionHygiene:
    TAGS = ("bare", "broad", "tuple-broad", "base")

    def test_violations_line_exact(self):
        source, active, _ = run_fixture(
            "exception_violation.py", NEUTRAL_PATH, "exception-hygiene"
        )
        assert sorted(f.line for f in active) == sorted(
            marked_lines(source, *self.TAGS)
        )

    def test_clean_twin_with_reasoned_suppression(self):
        _, active, suppressed = run_fixture(
            "exception_clean.py", NEUTRAL_PATH, "exception-hygiene"
        )
        assert active == []
        # The reasoned broad handler is recorded as suppressed, not
        # silently dropped — suppressions stay auditable.
        assert len(suppressed) == 1


class TestErrorEscalation:
    TAGS = ("oserror", "corruption", "tuple", "typed-io", "logged")

    def test_violations_line_exact(self):
        source, active, _ = run_fixture(
            "escalation_violation.py", STORE_PATH, "error-escalation"
        )
        assert sorted(f.line for f in active) == sorted(
            marked_lines(source, *self.TAGS)
        )
        assert {f.rule for f in active} == {"error-escalation"}

    def test_clean_twin_with_reasoned_suppression(self):
        _, active, suppressed = run_fixture(
            "escalation_clean.py", STORE_PATH, "error-escalation"
        )
        assert active == []
        # The best-effort probe's swallow is recorded as suppressed,
        # not silently dropped — suppressions stay auditable.
        assert len(suppressed) == 1

    def test_serving_scope_checked(self):
        source, active, _ = run_fixture(
            "escalation_violation.py", LIVE_PATH, "error-escalation"
        )
        assert len(active) == len(self.TAGS)

    def test_out_of_scope_path_not_checked(self):
        _, active, _ = run_fixture(
            "escalation_violation.py", NEUTRAL_PATH, "error-escalation"
        )
        assert active == []


class TestPicklability:
    TAGS = (
        "lambda",
        "nested",
        "assigned-lambda",
        "partial-lambda",
        "bound-method",
    )

    def test_violations_line_exact(self):
        source, active, _ = run_fixture(
            "pickle_violation.py", NEUTRAL_PATH, "picklability"
        )
        assert sorted(f.line for f in active) == sorted(
            marked_lines(source, *self.TAGS)
        )

    def test_clean_twin(self):
        _, active, _ = run_fixture(
            "pickle_clean.py", NEUTRAL_PATH, "picklability"
        )
        assert active == []


class TestCacheInvalidation:
    TAGS = ("silent-mutator", "silent-remove")

    def test_violations_line_exact(self):
        source, active, _ = run_fixture(
            "cache_violation.py", LIVE_PATH, "cache-invalidation"
        )
        assert sorted(f.line for f in active) == sorted(
            marked_lines(source, *self.TAGS)
        )
        assert all("_version" in f.message for f in active)

    def test_clean_twin(self):
        _, active, _ = run_fixture(
            "cache_clean.py", LIVE_PATH, "cache-invalidation"
        )
        assert active == []
