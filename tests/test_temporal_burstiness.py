"""Eq. 1 temporal burstiness, the discrepancy transform, and detectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EmptyInputError, InvalidIntervalError
from repro.intervals import Interval
from repro.temporal import (
    KleinbergBurstDetector,
    LappasBurstDetector,
    discrepancy_transform,
    extract_bursty_intervals,
    interval_score,
    temporal_burstiness,
)

freq_sequences = st.lists(st.integers(0, 30).map(float), min_size=1, max_size=50)


class TestDiscrepancyTransform:
    def test_empty_rejected(self):
        with pytest.raises(EmptyInputError):
            discrepancy_transform([])

    def test_negative_rejected(self):
        with pytest.raises(InvalidIntervalError):
            discrepancy_transform([1.0, -1.0])

    def test_zero_mass(self):
        assert discrepancy_transform([0.0, 0.0]) == [-0.5, -0.5]

    @given(freq_sequences)
    def test_transform_sums_to_zero(self, values):
        """Σ z_i = 1 − 1 = 0 whenever the sequence has mass."""
        transformed = discrepancy_transform(values)
        if sum(values) > 0:
            assert sum(transformed) == pytest.approx(0.0, abs=1e-9)

    @given(freq_sequences)
    def test_segment_sum_equals_bt(self, values):
        """The reduction behind the linear-time extraction (Section 3)."""
        transformed = discrepancy_transform(values)
        n = len(values)
        for start in range(0, n, max(1, n // 4)):
            for end in range(start, n, max(1, n // 4)):
                interval = Interval(start, end)
                assert interval_score(transformed, interval) == pytest.approx(
                    temporal_burstiness(values, interval), abs=1e-9
                )


class TestTemporalBurstiness:
    def test_uniform_sequence_no_burst(self):
        values = [5.0] * 10
        for start in range(10):
            assert temporal_burstiness(values, Interval(start, start)) == pytest.approx(
                0.0, abs=1e-12
            )

    def test_concentrated_mass(self):
        values = [0.0, 0.0, 12.0, 0.0]
        assert temporal_burstiness(values, Interval(2, 2)) == pytest.approx(1 - 0.25)

    def test_full_interval_zero(self):
        values = [1.0, 2.0, 3.0]
        assert temporal_burstiness(values, Interval(0, 2)) == pytest.approx(0.0)

    def test_out_of_bounds(self):
        with pytest.raises(InvalidIntervalError):
            temporal_burstiness([1.0, 2.0], Interval(1, 2))

    def test_zero_mass_interval_negative(self):
        assert temporal_burstiness([0.0, 0.0], Interval(0, 0)) == pytest.approx(-0.5)

    @given(freq_sequences)
    def test_bounds(self, values):
        """B_T ∈ (−1, 1) always (Section 3 says 'in [0,1]' for the
        reported, positive-scoring intervals)."""
        n = len(values)
        for start in range(0, n, max(1, n // 3)):
            interval = Interval(start, min(start + 3, n - 1))
            score = temporal_burstiness(values, interval)
            assert -1.0 <= score <= 1.0


class TestLappasDetector:
    def test_clean_burst(self):
        values = [1.0] * 10 + [20.0] * 3 + [1.0] * 10
        segments = LappasBurstDetector().detect(values)
        best = max(segments, key=lambda s: s.score)
        assert best.interval == Interval(10, 12)

    def test_zero_sequence(self):
        assert LappasBurstDetector().detect([0.0] * 5) == []

    def test_empty_sequence(self):
        assert LappasBurstDetector().detect([]) == []

    def test_min_score_filters(self):
        values = [1.0, 1.0, 2.0, 1.0]
        loose = LappasBurstDetector(min_score=0.0).detect(values)
        strict = LappasBurstDetector(min_score=0.9).detect(values)
        assert len(strict) <= len(loose)
        assert strict == []

    def test_min_length_filters(self):
        values = [0.0, 9.0, 0.0, 0.0, 5.0, 5.0, 5.0, 0.0]
        segments = LappasBurstDetector(min_length=2).detect(values)
        assert all(s.interval.length >= 2 for s in segments)

    def test_max_intervals_keeps_best(self):
        values = [10.0, 0.0, 6.0, 0.0, 8.0, 0.0]
        segments = LappasBurstDetector(max_intervals=2).detect(values)
        assert len(segments) == 2
        # Results stay in left-to-right order.
        assert segments[0].start < segments[1].start

    def test_invalid_min_length(self):
        with pytest.raises(ValueError):
            LappasBurstDetector(min_length=0)

    @given(freq_sequences)
    def test_intervals_non_overlapping(self, values):
        segments = LappasBurstDetector().detect(values)
        for first, second in zip(segments, segments[1:]):
            assert first.end < second.start

    @given(freq_sequences)
    def test_scores_positive_and_bounded(self, values):
        for segment in LappasBurstDetector().detect(values):
            assert 0.0 < segment.score <= 1.0

    def test_convenience_wrapper(self):
        values = [0.0, 10.0, 0.0]
        assert extract_bursty_intervals(values) == LappasBurstDetector().detect(values)


class TestKleinbergDetector:
    def test_clean_burst_found(self):
        values = [1.0] * 15 + [30.0] * 4 + [1.0] * 15
        segments = KleinbergBurstDetector(scaling=3.0, gamma=0.5).detect(values)
        assert segments, "an obvious burst must be detected"
        best = max(segments, key=lambda s: s.score)
        assert best.interval.start >= 14
        assert best.interval.end <= 20

    def test_flat_sequence_no_burst(self):
        values = [5.0] * 30
        assert KleinbergBurstDetector().detect(values) == []

    def test_zero_sequence(self):
        assert KleinbergBurstDetector().detect([0.0] * 10) == []

    def test_empty(self):
        assert KleinbergBurstDetector().detect([]) == []

    def test_invalid_scaling(self):
        with pytest.raises(Exception):
            KleinbergBurstDetector(scaling=1.0)

    def test_invalid_gamma(self):
        with pytest.raises(Exception):
            KleinbergBurstDetector(gamma=-0.1)

    def test_totals_length_mismatch(self):
        with pytest.raises(Exception):
            KleinbergBurstDetector().detect([1.0, 2.0], totals=[3.0])

    def test_higher_gamma_fewer_bursts(self):
        values = [1.0, 8.0, 1.0, 9.0, 1.0, 7.0] * 4
        eager = KleinbergBurstDetector(gamma=0.1).detect(values)
        lazy = KleinbergBurstDetector(gamma=10.0).detect(values)
        assert len(lazy) <= len(eager)

    @given(freq_sequences)
    def test_intervals_non_overlapping(self, values):
        segments = KleinbergBurstDetector().detect(values)
        for first, second in zip(segments, segments[1:]):
            assert first.end < second.start

    @given(freq_sequences)
    def test_usable_by_stcomb_protocol(self, values):
        """Kleinberg satisfies the pluggable-detector contract."""
        for segment in KleinbergBurstDetector().detect(values):
            assert segment.score > 0.0
            assert 0 <= segment.start <= segment.end < len(values)
