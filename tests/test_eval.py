"""Metrics, annotator, reporting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EmptyInputError
from repro.eval import (
    GroundTruthAnnotator,
    end_error,
    jaccard_similarity,
    precision_at_k,
    render_histogram,
    render_series,
    render_table,
    start_error,
    topk_overlap,
)
from repro.intervals import Interval
from repro.streams import Document


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity({"a"}, {"b"}) == 0.0

    def test_partial(self):
        assert jaccard_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert jaccard_similarity([], []) == 1.0

    @given(
        st.sets(st.integers(0, 20)),
        st.sets(st.integers(0, 20)),
    )
    def test_bounds_and_symmetry(self, a, b):
        j = jaccard_similarity(a, b)
        assert 0.0 <= j <= 1.0
        assert j == pytest.approx(jaccard_similarity(b, a))


class TestTimeframeErrors:
    def test_exact(self):
        assert start_error(Interval(3, 8), Interval(3, 9)) == 0
        assert end_error(Interval(3, 8), Interval(3, 9)) == 1

    def test_symmetric_absolute(self):
        assert start_error(Interval(1, 5), Interval(4, 5)) == 3
        assert start_error(Interval(4, 5), Interval(1, 5)) == 3


class TestPrecision:
    def test_all_relevant(self):
        assert precision_at_k([True] * 10) == 1.0

    def test_partial(self):
        assert precision_at_k([True, False, True, False], k=4) == 0.5

    def test_cutoff(self):
        assert precision_at_k([True, True, False, False], k=2) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(EmptyInputError):
            precision_at_k([])


class TestTopkOverlap:
    def test_identical(self):
        assert topk_overlap([1, 2, 3], [3, 2, 1]) == 1.0

    def test_disjoint(self):
        assert topk_overlap([1], [2]) == 0.0

    def test_partial(self):
        assert topk_overlap([1, 2, 3, 4], [3, 4, 5, 6]) == 0.5

    def test_empty(self):
        assert topk_overlap([], []) == 1.0


class TestAnnotator:
    def test_judgement(self):
        annotator = GroundTruthAnnotator()
        relevant = Document(1, "us", 0, ("a",), event_id=7)
        decoy = Document(2, "us", 0, ("a",), event_id=None)
        other = Document(3, "us", 0, ("a",), event_id=8)
        assert annotator.judge([relevant, decoy, other], 7) == [True, False, False]


class TestReporting:
    def test_table_contains_cells(self):
        text = render_table("T", ["a", "b"], [[1, 2.5], ["x", 3]])
        assert "T" in text
        assert "2.50" in text
        assert "x" in text

    def test_series(self):
        text = render_series("S", "t", [("m", [1.0, 2.0])], [10, 20])
        assert "m" in text
        assert "10" in text

    def test_histogram(self):
        text = render_histogram("H", [("[0,1)", 0.92), (">=1", 0.08)])
        assert "92.0%" in text
        assert "#" in text
