"""Differential suite: every top-k strategy returns the identical ranking.

Pins ``threshold_topk`` (reference TA) == ``blockmax_topk`` ==
``scan_topk`` == planner-selected ``topk`` == ``exhaustive_topk`` over
random workloads spanning:

* both posting containers — legacy ``PostingList`` and columnar
  ``PostingArray`` — mixed within one query;
* truncated (pruned-prefix) lists, where random access answers for
  documents sorted access no longer reaches, including depth-0 pruning
  and the exhausted-list threshold-bound regression;
* heavy score ties (small integer scores) exercising the deterministic
  ``crc32`` tiebreak, negative scores, and k beyond the candidate set;
* integer ids (the kernel's fully vectorized path) and string/mixed
  ids (the dict-gather fallback).

"Identical" is exact: same document ids, same floating-point score
bits, same order.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar.postings import PostingArray
from repro.errors import SearchError
from repro.search import (
    Posting,
    PostingList,
    blockmax_topk,
    exhaustive_topk,
    normalize_query_terms,
    plan_strategy,
    scan_topk,
    threshold_topk,
    topk,
    topk_many,
    true_length,
)


def ranking(results):
    return [(result.doc_id, result.score) for result in results]


def assert_all_strategies_agree(lists, k, blocks=(1, 3, 64)):
    """Every strategy — and the planner — must agree exactly."""
    reference = ranking(exhaustive_topk(lists, k))
    ta, _ = threshold_topk(lists, k)
    assert ranking(ta) == reference
    for block in blocks:
        blockmax, _ = blockmax_topk(lists, k, block=block)
        assert ranking(blockmax) == reference, f"block={block}"
    scan, _ = scan_topk(lists, k)
    assert ranking(scan) == reference
    auto, stats = topk(lists, k, "auto")
    assert ranking(auto) == reference
    assert stats.planned and stats.strategy in ("blockmax", "scan")
    return reference


def build_lists(spec, rng, id_pool=None):
    """Posting lists from ``spec`` (one doc→score dict per list).

    Randomly mixes ``PostingList``/``PostingArray`` containers and
    truncation depths, mirroring what the engines and the live index
    can serve.
    """
    lists = []
    for entries in spec:
        docs = list(entries)
        if id_pool is not None:
            docs = [id_pool[doc % len(id_pool)] for doc in docs]
            entries = dict(zip(docs, entries.values()))
        postings = [Posting(doc, score) for doc, score in entries.items()]
        if rng.random() < 0.5:
            plist = PostingArray(
                [p.doc_id for p in postings], [p.score for p in postings]
            )
        else:
            plist = PostingList(postings)
        if len(plist) and rng.random() < 0.4:
            plist = plist.truncated(rng.randint(0, len(plist)))
        lists.append(plist)
    return lists


_SPEC = st.lists(
    st.dictionaries(
        st.integers(0, 25),
        # Small integer scores force heavy ties; negatives included.
        st.integers(-4, 7).map(float),
        max_size=14,
    ),
    min_size=1,
    max_size=4,
)


class TestDifferential:
    @settings(max_examples=120, deadline=None)
    @given(_SPEC, st.integers(1, 8), st.randoms(use_true_random=False))
    def test_integer_ids(self, spec, k, rng):
        assert_all_strategies_agree(build_lists(spec, rng), k)

    @settings(max_examples=80, deadline=None)
    @given(_SPEC, st.integers(1, 8), st.randoms(use_true_random=False))
    def test_string_and_mixed_ids(self, spec, k, rng):
        """Non-integer ids exercise the dict-gather fallback path."""
        pool = ["a", "b", "cc", "d0", "e", "f9", 31, 45, "g", "h7"]
        assert_all_strategies_agree(
            build_lists(spec, rng, id_pool=pool), k
        )

    @settings(max_examples=60, deadline=None)
    @given(
        _SPEC,
        st.integers(1, 6),
        st.floats(0.0, 10.0, allow_nan=False),
        st.randoms(use_true_random=False),
    )
    def test_float_scores(self, spec, k, jitter, rng):
        spec = [
            {doc: score + jitter * (doc % 3) for doc, score in entries.items()}
            for entries in spec
        ]
        assert_all_strategies_agree(build_lists(spec, rng), k)


class TestRegressions:
    def test_exhausted_pruned_list_keeps_bounding(self):
        """The PR-1 stopping-rule regression, now pinned across every
        strategy: a pruned list's final score must stay in the bound."""
        full = PostingList([Posting("x", 10.0), Posting("y", 9.0)])
        pruned = full.truncated(1)
        other = PostingList(
            [
                Posting("d1", 3.0),
                Posting("d2", 2.9),
                Posting("y", 2.5),
                Posting("x", 0.1),
            ]
        )
        reference = assert_all_strategies_agree([pruned, other], 1)
        assert reference == [("y", 11.5)]

    def test_depth_zero_truncation_random_access_only(self):
        """A depth-0 pruned list exposes nothing to sorted access but
        still scores candidates discovered in the other lists."""
        hidden = PostingArray([1, 2], [2.0, 1.0]).truncated(0)
        visible = PostingArray([1, 2, 3], [5.0, 4.0, 3.0])
        reference = assert_all_strategies_agree([hidden, visible], 3)
        assert [doc for doc, _ in reference] == [1, 2]

    def test_kth_score_tie_resolved_by_tiebreak(self):
        """An unseen document tying the k-th aggregate can still win
        the crc32 tiebreak — every strategy must agree."""
        from repro.search.inverted_index import rank_tiebreak

        pool = sorted((f"doc{i}" for i in range(200)), key=rank_tiebreak)
        b1, b2, a2, a3, y, w = (*pool[:5], pool[-1])
        list_a = PostingList(
            [Posting(w, 5.0), Posting(a2, 3.0), Posting(a3, 3.0), Posting(y, 3.0)]
        )
        list_b = PostingList(
            [Posting(b1, 3.0), Posting(b2, 3.0), Posting(y, 3.0), Posting(w, 1.0)]
        )
        reference = assert_all_strategies_agree([list_a, list_b], 1)
        assert [doc for doc, _ in reference] == [y]

    def test_empty_list_excludes_everything(self):
        lists = [
            PostingArray([], []),
            PostingArray([1, 2], [2.0, 1.0]),
        ]
        assert assert_all_strategies_agree(lists, 3) == []

    def test_duplicate_ids_within_a_list(self):
        """Dict semantics (last sorted occurrence wins) hold across
        containers and strategies."""
        lists = [
            PostingArray([3, 3, 1], [5.0, 2.0, 4.0]),
            PostingList([Posting(3, 1.0), Posting(1, 1.0)]),
        ]
        assert_all_strategies_agree(lists, 3)

    def test_single_list_k_beyond_length(self):
        lists = [PostingArray([5, 6, 7], [3.0, 2.0, 1.0])]
        reference = assert_all_strategies_agree(lists, 10)
        assert len(reference) == 3

    def test_conjunctive_intersection_smaller_than_k(self):
        """TA's full-exhaustion case: fewer survivors than k."""
        lists = [
            PostingArray(list(range(0, 40)), [float(40 - i) for i in range(40)]),
            PostingArray(
                list(range(38, 78)), [float(78 - i) for i in range(38, 78)]
            ),
        ]
        reference = assert_all_strategies_agree(lists, 10)
        assert len(reference) == 2  # docs 38, 39 only


class TestDispatchAndPlanner:
    def test_unknown_strategy_rejected(self):
        lists = [PostingArray([1], [1.0])]
        with pytest.raises(SearchError):
            topk(lists, 1, "quantum")

    def test_invalid_k_and_empty_lists(self):
        lists = [PostingArray([1], [1.0])]
        with pytest.raises(SearchError):
            topk(lists, 0)
        with pytest.raises(SearchError):
            topk([], 1)
        with pytest.raises(SearchError):
            blockmax_topk(lists, 1, block=0)

    def test_explicit_strategies_run_what_was_asked(self):
        lists = [PostingArray(list(range(50)), [float(i) for i in range(50)])]
        for name in ("ta", "blockmax", "scan"):
            _, stats = topk(lists, 3, name)
            assert stats.strategy == name
            assert not stats.planned

    def test_planner_prefers_scan_for_small_inputs(self):
        lists = [PostingArray([1, 2, 3], [3.0, 2.0, 1.0])] * 2
        assert plan_strategy(lists, 2) == "scan"

    def test_planner_prefers_scan_for_large_k(self):
        n = 4000
        lists = [PostingArray(list(range(n)), [float(i) for i in range(n)])]
        assert plan_strategy(lists, n // 2) == "scan"

    def test_planner_prefers_blockmax_for_selective_deep_queries(self):
        n = 4000
        lists = [
            PostingArray(list(range(n)), [float(i) for i in range(n)])
            for _ in range(2)
        ]
        assert plan_strategy(lists, 5) == "blockmax"

    def test_planner_uses_true_length_for_truncated_lists(self):
        """Regression: ``plan_strategy`` summed the *visible* ``len()``
        for its total-work cutoff, so deeply pruned lists looked tiny
        and planned as ``scan`` — but scan gathers candidates against
        the *full* random-access relation, which pruning preserves.
        The cutoff must use :func:`true_length`."""
        visible, full = 1000, 30000
        lists = [
            PostingArray(
                list(range(full)), [float(full - i) for i in range(full)]
            ).truncated(visible)
            for _ in range(2)
        ]
        assert len(lists[0]) == visible
        assert true_length(lists[0]) == full
        # Visible total (2000) is under SCAN_TOTAL_CUTOFF; the true
        # total (60000) is far over it, and k is selective relative to
        # the visible prefix — blockmax, not scan.
        assert plan_strategy(lists, 5) == "blockmax"

    def test_true_length_across_containers(self):
        array = PostingArray([1, 2, 3], [3.0, 2.0, 1.0])
        assert true_length(array) == 3
        assert true_length(array.truncated(1)) == 3
        legacy = PostingList([Posting(1, 2.0), Posting(2, 1.0)])
        assert true_length(legacy) == 2
        assert true_length(legacy.truncated(0)) == 2
        assert len(legacy.truncated(0)) == 0

    def test_topk_many_matches_per_query_topk(self):
        shared = PostingArray(
            list(range(300)), [float((i * 17) % 101) for i in range(300)]
        )
        other = PostingArray(
            list(range(0, 300, 2)), [float((i * 29) % 97) for i in range(150)]
        )
        queries = [[shared, other], [shared], [other, shared]]
        batched = topk_many(queries, 5)
        for lists, (results, _) in zip(queries, batched):
            solo, _ = topk(lists, 5)
            assert ranking(results) == ranking(solo)

    def test_normalize_query_terms(self):
        assert normalize_query_terms(["b", "a", "b", "a"]) == ("a", "b")
        assert normalize_query_terms([]) == ()


class TestExhaustiveSemantics:
    """The single-pass ``exhaustive_topk`` rewrite keeps the original
    exclude-if-missing-anywhere semantics."""

    def test_hidden_document_still_scored_via_random_access(self):
        pruned = PostingList(
            [Posting("a", 9.0), Posting("b", 8.0)]
        ).truncated(1)  # "b" hidden from sorted access, map intact
        other = PostingList([Posting("b", 5.0), Posting("a", 1.0)])
        results = exhaustive_topk([pruned, other], 2)
        assert ranking(results) == [("b", 13.0), ("a", 10.0)]

    def test_document_missing_from_one_list_excluded(self):
        lists = [
            PostingList([Posting("a", 9.0), Posting("b", 1.0)]),
            PostingList([Posting("b", 1.0), Posting("c", 9.0)]),
        ]
        results = exhaustive_topk(lists, 5)
        assert ranking(results) == [("b", 2.0)]

    def test_hidden_everywhere_is_not_a_candidate(self):
        """A document visible to no list's sorted access never surfaces,
        even though every random-access map knows it."""
        lists = [
            PostingList([Posting("a", 5.0), Posting("b", 4.0)]).truncated(1),
            PostingList([Posting("b", 9.0), Posting("a", 1.0)]).truncated(1),
        ]
        # "a" is visible in list 0; "b" is visible in list 1; both are
        # candidates here.  Truncate deeper to hide "b" everywhere:
        deeper = [
            PostingList([Posting("a", 5.0), Posting("b", 4.0)]).truncated(1),
            PostingList([Posting("a", 1.0), Posting("b", 0.5)]).truncated(1),
        ]
        results = exhaustive_topk(deeper, 5)
        assert ranking(results) == [("a", 6.0)]
