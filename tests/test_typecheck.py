"""`mypy --strict` gate over the typed core modules.

Runs only where mypy is installed (the CI lint job installs it; the
minimal test environment may not have it — the analyzer itself has no
dependency on mypy).  The module list lives in ``mypy.ini`` so this
test, the CI job and a by-hand ``mypy`` invocation all check the same
thing.
"""

import os

import pytest

mypy_api = pytest.importorskip(
    "mypy.api", reason="mypy is not installed; the CI lint job runs this"
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_typed_core_is_strict_clean():
    stdout, stderr, status = mypy_api.run(
        ["--config-file", os.path.join(REPO_ROOT, "mypy.ini")]
    )
    assert status == 0, f"mypy --strict failed:\n{stdout}\n{stderr}"
