"""CLI surface of the analyzer: ``repro check`` exit codes and formats."""

import json

from repro.cli import main

VIOLATION = "import time\n\n\ndef stamp():\n    return time.time()\n"


def make_tree(tmp_path, source=VIOLATION):
    module = tmp_path / "src" / "repro" / "columnar" / "mod.py"
    module.parent.mkdir(parents=True)
    module.write_text(source)
    return str(tmp_path)


class TestCheckCommand:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        root = make_tree(tmp_path, source="x = 1\n")
        assert main(["check", root]) == 0
        assert "clean:" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        root = make_tree(tmp_path)
        assert main(["check", root]) == 1
        out = capsys.readouterr().out
        assert "[determinism]" in out
        assert "mod.py:5:" in out

    def test_json_format_and_output_file(self, tmp_path, capsys):
        root = make_tree(tmp_path)
        target = str(tmp_path / "report.json")
        assert (
            main(["check", root, "--format", "json", "--output", target])
            == 1
        )
        on_stdout = json.loads(capsys.readouterr().out)
        with open(target, encoding="utf-8") as handle:
            on_disk = json.loads(handle.read())
        assert on_stdout == on_disk
        assert on_disk["counts"] == {"determinism": 1}

    def test_ignore_silences_rule(self, tmp_path):
        root = make_tree(tmp_path)
        assert main(["check", root, "--ignore", "determinism"]) == 0

    def test_select_other_rule_passes(self, tmp_path):
        root = make_tree(tmp_path)
        assert main(["check", root, "--select", "mmap-safety"]) == 0

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        root = make_tree(tmp_path)
        assert main(["check", root, "--select", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in (
            "determinism",
            "mmap-safety",
            "dtype-discipline",
            "exception-hygiene",
            "picklability",
            "cache-invalidation",
        ):
            assert name in out

    def test_program_rules_listed(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in (
            "error-contract",
            "mmap-escape",
            "invalidation-reachability",
            "blocking-in-async",
        ):
            assert name in out

    def test_nonexistent_path_exits_two_without_traceback(
        self, tmp_path, capsys
    ):
        missing = str(tmp_path / "misspelled")
        assert main(["check", missing]) == 2
        err = capsys.readouterr().err
        assert "misspelled" in err
        assert "Traceback" not in err

    def test_stats_flag_reports_cache_and_graph(self, tmp_path, capsys):
        root = make_tree(tmp_path, source="x = 1\n")
        cache_dir = str(tmp_path / "cache")
        assert (
            main(["check", root, "--stats", "--cache-dir", cache_dir])
            == 0
        )
        out = capsys.readouterr().out
        assert "stats:" in out
        assert "miss(es)" in out
        assert "module(s)" in out
        # Second run over the unchanged tree is all cache hits.
        assert (
            main(["check", root, "--stats", "--cache-dir", cache_dir])
            == 0
        )
        assert "1 hit(s), 0 miss(es)" in capsys.readouterr().out

    def test_no_cache_flag_disables_cache(self, tmp_path, capsys):
        root = make_tree(tmp_path, source="x = 1\n")
        assert main(["check", root, "--stats", "--no-cache"]) == 0
        assert "cache: disabled" in capsys.readouterr().out

    def test_missing_paths_exit_two(self, tmp_path, capsys, monkeypatch):
        empty = tmp_path / "elsewhere"
        empty.mkdir()
        monkeypatch.chdir(empty)
        assert main(["check"]) == 2
        assert "no paths" in capsys.readouterr().err

    def test_default_paths_from_working_directory(
        self, tmp_path, capsys, monkeypatch
    ):
        make_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["check"]) == 1
        assert "[determinism]" in capsys.readouterr().out
