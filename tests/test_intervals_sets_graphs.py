"""Tests for interval sets, gap filling, and interval graphs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import OverlapError
from repro.intervals import (
    Interval,
    IntervalSet,
    WeightedInterval,
    build_interval_graph,
    fill_gaps,
    intervals_from_mask,
    merge_touching,
)


class TestIntervalSet:
    def test_add_and_iterate_sorted(self):
        s = IntervalSet()
        s.add(Interval(5, 6))
        s.add(Interval(1, 2))
        assert list(s) == [Interval(1, 2), Interval(5, 6)]

    def test_add_overlap_rejected(self):
        s = IntervalSet([Interval(1, 5)])
        with pytest.raises(OverlapError):
            s.add(Interval(4, 8))

    def test_add_touching_rejected(self):
        s = IntervalSet([Interval(1, 5)])
        with pytest.raises(OverlapError):
            s.add(Interval(5, 7))

    def test_adjacent_allowed(self):
        s = IntervalSet([Interval(1, 5)])
        s.add(Interval(6, 7))
        assert len(s) == 2

    def test_constructor_overlap_rejected(self):
        with pytest.raises(OverlapError):
            IntervalSet([Interval(0, 3), Interval(2, 5)])

    def test_covering_hits(self):
        s = IntervalSet([Interval(0, 2), Interval(5, 9)])
        assert s.covering(1) == Interval(0, 2)
        assert s.covering(5) == Interval(5, 9)
        assert s.covering(3) is None

    def test_discard(self):
        s = IntervalSet([Interval(0, 2)])
        assert s.discard(Interval(0, 2)) is True
        assert s.discard(Interval(0, 2)) is False
        assert len(s) == 0

    def test_membership(self):
        s = IntervalSet([Interval(0, 2)])
        assert Interval(0, 2) in s
        assert Interval(0, 3) not in s

    def test_overlapping_query(self):
        s = IntervalSet([Interval(0, 2), Interval(5, 9), Interval(12, 13)])
        assert s.overlapping(Interval(2, 6)) == [Interval(0, 2), Interval(5, 9)]

    def test_total_length(self):
        s = IntervalSet([Interval(0, 2), Interval(5, 5)])
        assert s.total_length() == 4

    def test_equality(self):
        assert IntervalSet([Interval(1, 2)]) == IntervalSet([Interval(1, 2)])
        assert IntervalSet([Interval(1, 2)]) != IntervalSet([])


class TestMergeAndGaps:
    def test_merge_touching_overlap(self):
        merged = merge_touching([Interval(0, 3), Interval(2, 5)])
        assert merged == [Interval(0, 5)]

    def test_merge_adjacent(self):
        merged = merge_touching([Interval(0, 1), Interval(2, 3)])
        assert merged == [Interval(0, 3)]

    def test_merge_keeps_gaps(self):
        merged = merge_touching([Interval(0, 1), Interval(3, 4)])
        assert merged == [Interval(0, 1), Interval(3, 4)]

    def test_fill_gaps_small_gap(self):
        filled = fill_gaps([Interval(0, 1), Interval(3, 4)], max_gap=2)
        assert filled == [Interval(0, 4)]

    def test_fill_gaps_large_gap_kept(self):
        filled = fill_gaps([Interval(0, 1), Interval(4, 5)], max_gap=2)
        assert filled == [Interval(0, 1), Interval(4, 5)]

    def test_fill_gaps_empty(self):
        assert fill_gaps([], max_gap=3) == []

    def test_mask_roundtrip(self):
        mask = [False, True, True, False, True]
        assert intervals_from_mask(mask) == [Interval(1, 2), Interval(4, 4)]

    def test_mask_all_true(self):
        assert intervals_from_mask([True] * 4) == [Interval(0, 3)]

    def test_mask_all_false(self):
        assert intervals_from_mask([False] * 4) == []

    @given(st.lists(st.booleans(), max_size=40))
    def test_mask_covers_exactly_true_positions(self, mask):
        runs = intervals_from_mask(mask)
        covered = set()
        for run in runs:
            covered.update(run)
        expected = {i for i, value in enumerate(mask) if value}
        assert covered == expected


class TestIntervalGraph:
    def _intervals(self):
        return [
            WeightedInterval(Interval(0, 4), 1.0, "a"),
            WeightedInterval(Interval(3, 7), 2.0, "b"),
            WeightedInterval(Interval(6, 9), 0.5, "c"),
            WeightedInterval(Interval(20, 25), 1.5, "d"),
        ]

    def test_edges_match_intersections(self):
        graph = build_interval_graph(self._intervals())
        assert graph.graph.has_edge(0, 1)
        assert graph.graph.has_edge(1, 2)
        assert not graph.graph.has_edge(0, 2)
        assert graph.degrees()[3] == 0

    def test_counts(self):
        graph = build_interval_graph(self._intervals())
        assert graph.vertex_count() == 4
        assert graph.edge_count() == 2

    def test_clique_weight(self):
        graph = build_interval_graph(self._intervals())
        assert graph.clique_weight([0, 1]) == pytest.approx(3.0)

    def test_is_clique(self):
        graph = build_interval_graph(self._intervals())
        assert graph.is_clique([0, 1])
        assert graph.is_clique([1, 2])
        assert not graph.is_clique([0, 1, 2])

    def test_subset_maps_back(self):
        items = self._intervals()
        graph = build_interval_graph(items)
        assert graph.subset([3]) == [items[3]]

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 10)),
            min_size=1,
            max_size=15,
        )
    )
    def test_edge_set_equals_bruteforce(self, raw):
        items = [
            WeightedInterval(Interval(start, start + length), 1.0, index)
            for index, (start, length) in enumerate(raw)
        ]
        graph = build_interval_graph(items)
        for i in range(len(items)):
            for j in range(i + 1, len(items)):
                expected = items[i].interval.intersects(items[j].interval)
                assert graph.graph.has_edge(i, j) == expected
