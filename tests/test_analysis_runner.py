"""Runner, suppression, reporting and self-check tests for the analyzer.

The self-check is the load-bearing test: ``repro check`` over this
repository's own ``src/`` and ``benchmarks/`` trees must be clean —
every finding either fixed or explicitly suppressed with a reason.
"""

import json
import os

import pytest

from repro.analysis import (
    check_paths,
    check_source,
    default_config,
    render_json,
    render_text,
)
from repro.analysis.runner import PARSE_ERROR_RULE, iter_python_files
from repro.errors import AnalysisError, ConfigurationError

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

KERNEL_PATH = "src/repro/columnar/fixture.py"

VIOLATION = "import time\n\n\ndef stamp():\n    return time.time()\n"


class TestSuppressions:
    def test_blanket_noqa_suppresses(self):
        source = VIOLATION.replace(
            "time.time()", "time.time()  # repro: noqa"
        )
        active, suppressed = check_source(
            source, KERNEL_PATH, default_config()
        )
        assert active == []
        assert [f.rule for f in suppressed] == ["determinism"]

    def test_named_noqa_suppresses_only_named_rules(self):
        source = VIOLATION.replace(
            "time.time()",
            "time.time()  # repro: noqa[determinism] -- fixture",
        )
        active, suppressed = check_source(
            source, KERNEL_PATH, default_config()
        )
        assert active == []
        assert len(suppressed) == 1

    def test_unrelated_rule_name_does_not_suppress(self):
        source = VIOLATION.replace(
            "time.time()", "time.time()  # repro: noqa[mmap-safety]"
        )
        active, suppressed = check_source(
            source, KERNEL_PATH, default_config()
        )
        assert [f.rule for f in active] == ["determinism"]
        assert suppressed == []

    def test_marker_inside_string_is_not_a_suppression(self):
        source = VIOLATION.replace(
            "return time.time()",
            'label = "# repro: noqa"\n    return time.time()',
        )
        active, _ = check_source(source, KERNEL_PATH, default_config())
        assert [f.rule for f in active] == ["determinism"]

    def test_directive_on_continuation_line_covers_statement(self):
        # The finding anchors at the physical line of time.time( — the
        # directive trails the closing bracket two lines later, on the
        # same *logical* line.
        source = (
            "import time\n"
            "\n"
            "\n"
            "def stamp():\n"
            "    return time.time(\n"
            "        # a pensive comment inside the call\n"
            "    )  # repro: noqa[determinism] -- fixture\n"
        )
        active, suppressed = check_source(
            source, KERNEL_PATH, default_config()
        )
        assert active == []
        assert [f.rule for f in suppressed] == ["determinism"]

    def test_directive_on_decorator_line_covers_def(self):
        # cache-invalidation anchors at the def line; the directive
        # sits on the decorator line of the same suppression target.
        source = (
            "import functools\n"
            "\n"
            "\n"
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self._version = 0\n"
            "        self._data = {}\n"
            "\n"
            "    @functools.lru_cache  # repro: noqa[cache-invalidation] -- fixture\n"
            "    def add_entry(self, key):\n"
            "        self._data[key] = 1\n"
        )
        path = "src/repro/live/fixture.py"
        active, suppressed = check_source(source, path, default_config())
        assert [f.rule for f in active] == []
        assert [f.rule for f in suppressed] == ["cache-invalidation"]

    def test_directive_on_neighbouring_statement_does_not_cover(self):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def stamp():\n"
            "    label = 'x'  # repro: noqa[determinism] -- wrong line\n"
            "    return time.time()\n"
        )
        active, suppressed = check_source(
            source, KERNEL_PATH, default_config()
        )
        assert [f.rule for f in active] == ["determinism"]
        assert suppressed == []


class TestRunner:
    def test_parse_error_is_a_finding(self):
        active, suppressed = check_source(
            "def broken(:\n", KERNEL_PATH, default_config()
        )
        assert [f.rule for f in active] == [PARSE_ERROR_RULE]
        assert suppressed == []

    def test_scoping_spares_out_of_scope_modules(self):
        active, _ = check_source(
            VIOLATION, "src/repro/eval/fixture.py", default_config()
        )
        assert active == []

    def test_select_and_ignore(self):
        config = default_config(ignore=frozenset(["determinism"]))
        active, _ = check_source(VIOLATION, KERNEL_PATH, config)
        assert active == []
        config = default_config(select=frozenset(["mmap-safety"]))
        active, _ = check_source(VIOLATION, KERNEL_PATH, config)
        assert active == []

    def test_iter_python_files_skips_caches_and_sorts(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        hidden = tmp_path / ".hidden"
        hidden.mkdir()
        (hidden / "c.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "d.py").write_text("x = 1\n")
        nested = tmp_path / "pkg"
        nested.mkdir()
        (nested / "e.py").write_text("x = 1\n")
        found = [
            os.path.relpath(path, str(tmp_path))
            for path in iter_python_files([str(tmp_path)])
        ]
        assert found == ["a.py", "b.py", os.path.join("pkg", "e.py")]

    def test_check_paths_report(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "columnar" / "mod.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(VIOLATION)
        report = check_paths([str(tmp_path)])
        assert report.checked_files == 1
        assert not report.clean
        assert [f.rule for f in report.findings] == ["determinism"]

    def test_nonexistent_path_raises_typed_error(self, tmp_path):
        missing = str(tmp_path / "no-such-dir")
        with pytest.raises(AnalysisError, match="no-such-dir"):
            list(iter_python_files([missing]))
        with pytest.raises(AnalysisError, match="does not exist"):
            check_paths([missing])

    def test_unknown_rule_in_config_raises_typed_error(self):
        with pytest.raises(ConfigurationError, match="unknown rule"):
            default_config(select=frozenset(["no-such-rule"]))
        with pytest.raises(ConfigurationError, match="registered rules"):
            default_config(ignore=frozenset(["also-missing"]))


class TestReporting:
    def _report(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "columnar" / "mod.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(VIOLATION)
        return check_paths([str(tmp_path)])

    def test_text_report(self, tmp_path):
        rendered = render_text(self._report(tmp_path))
        assert "[determinism]" in rendered
        assert "mod.py:5:" in rendered
        assert "1 finding(s) in 1 file(s)" in rendered

    def test_json_report(self, tmp_path):
        payload = json.loads(render_json(self._report(tmp_path)))
        assert payload["clean"] is False
        assert payload["checked_files"] == 1
        assert payload["counts"] == {"determinism": 1}
        [finding] = payload["findings"]
        assert finding["rule"] == "determinism"
        assert finding["line"] == 5
        assert payload["suppressed"] == []

    def test_clean_text_report(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        rendered = render_text(check_paths([str(tmp_path)]))
        assert rendered.startswith("clean:")


class TestSelfCheck:
    def test_repro_tree_is_clean(self):
        """The analyzer's own gate: src/ and benchmarks/ carry zero
        unsuppressed findings."""
        paths = [os.path.join(REPO_ROOT, "src")]
        benchmarks = os.path.join(REPO_ROOT, "benchmarks")
        if os.path.isdir(benchmarks):
            paths.append(benchmarks)
        report = check_paths(paths)
        assert report.checked_files > 50
        assert report.findings == (), render_text(report)
