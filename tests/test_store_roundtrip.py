"""Round-trip differential suite: a loaded store equals a cold rebuild.

The acceptance oracle of the persistence layer: saving any serving
state and loading it back must be *byte*-faithful —

* posting columns keep their document ids, score float bits (NaN
  payloads and subnormals included) and crc32 tiebreak order;
* pruned (truncated) lists keep answering random access for documents
  their sorted prefix no longer exposes;
* non-integer document ids ride the JSON id table and the query
  kernel's dict-gather fallback, unchanged;
* reloaded engines return rankings identical to the engine they were
  saved from — and to a cold re-mine of the reloaded corpus — across
  every top-k strategy;
* restored trackers keep consuming snapshots exactly where the saved
  ones stopped (windows, histories, expectation models);
* live checkpoints resume ingestion and serving mid-stream, with
  serving statistics reset (counters must not describe an index they
  never measured).

Seeded workloads pin the known regimes; Hypothesis sweeps random
collections through the full save → load → compare cycle.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BatchMiner,
    BurstySearchEngine,
    Document,
    LiveCollection,
    Point,
    SpatiotemporalCollection,
    load_patterns,
    save_patterns,
    save_search_index,
    verify_store,
)
from repro.columnar.postings import PostingArray
from repro.errors import StoreError
from repro.live import LiveSearchEngine
from repro.search import Posting, PostingList
from repro.store import (
    FORMAT_VERSION,
    SegmentReader,
    SegmentWriter,
    load_trackers,
)
from repro.store.segments import (
    PostingSegment,
    decode_patterns,
    decode_trackers,
    encode_patterns,
    encode_posting_lists,
    encode_trackers,
)


def ranking(results):
    return [(r.document.doc_id, r.score) for r in results]


def build_collection(seed=0, streams=5, timeline=24, doc_ids="int"):
    """Small synthetic corpus with one localized burst per term."""
    rng = random.Random(seed)
    collection = SpatiotemporalCollection(timeline=timeline)
    sids = [f"s{i}" for i in range(streams)]
    for i, sid in enumerate(sids):
        collection.add_stream(sid, Point(float(i % 3), float(i // 3)))
    counter = 0

    def next_id():
        nonlocal counter
        counter += 1
        if doc_ids == "int":
            return counter
        if doc_ids == "str":
            return f"doc-{counter}"
        return counter if counter % 2 else f"doc-{counter}"

    for term in ("quake", "storm"):
        start = rng.randint(4, timeline - 8)
        members = rng.sample(sids, k=min(3, streams))
        for t in range(start, start + 5):
            for sid in members:
                for _ in range(rng.randint(1, 3)):
                    collection.add_document(
                        Document(next_id(), sid, t, (term, term))
                    )
    for t in range(timeline):
        for sid in sids:
            if rng.random() < 0.5:
                collection.add_document(
                    Document(next_id(), sid, t, ("filler",))
                )
    return collection


@pytest.fixture(scope="module", params=["raw", "packed"])
def saved(request, tmp_path_factory):
    """One saved index per posting codec — every round-trip invariant in
    this module must hold identically for raw and packed columns."""
    codec = request.param
    collection = build_collection(seed=3)
    terms = sorted(collection.vocabulary)
    miner = BatchMiner()
    trackers = miner.regional_trackers(collection)
    mined = {
        term: trackers[term].patterns(term)
        for term in terms
        if trackers[term].patterns(term)
    }
    engine = BurstySearchEngine(collection, mined)
    path = str(tmp_path_factory.mktemp("store") / "index")
    save_search_index(
        path, engine, "regional", terms=terms, trackers=trackers, codec=codec
    )
    return path, engine, mined, codec


class TestIndexRoundTrip:
    def test_rankings_identical_across_strategies(self, saved):
        path, engine, mined, _ = saved
        loaded = BurstySearchEngine.from_store(path)
        for query in list(mined) + ["quake storm", "quake filler storm"]:
            for strategy in ("ta", "blockmax", "scan", "auto"):
                assert ranking(
                    loaded.search(query, k=10, strategy=strategy)
                ) == ranking(engine.search(query, k=10, strategy=strategy))

    def test_posting_columns_bit_identical(self, saved):
        path, engine, mined, _ = saved
        loaded = BurstySearchEngine.from_store(path)
        for term in mined:
            ids_a, scores_a, ties_a = engine._posting_list(term).columns()
            ids_b, scores_b, ties_b = loaded._posting_list(term).columns()
            assert list(ids_a) == list(ids_b)
            assert np.asarray(scores_a).tobytes() == np.asarray(scores_b).tobytes()
            assert np.asarray(ties_a).tobytes() == np.asarray(ties_b).tobytes()

    def test_patterns_and_documents_round_trip(self, saved):
        path, engine, mined, _ = saved
        loaded = BurstySearchEngine.from_store(path)
        assert {t: list(p) for t, p in loaded._patterns.items()} == {
            t: list(p) for t, p in engine._patterns.items() if p
        }
        original = list(engine.collection.documents())
        reloaded = list(loaded.collection.documents())
        assert [d.doc_id for d in original] == [d.doc_id for d in reloaded]
        assert [d.stream_id for d in original] == [d.stream_id for d in reloaded]
        assert [d.timestamp for d in original] == [d.timestamp for d in reloaded]
        assert [d.term_counts() for d in original] == [
            d.term_counts() for d in reloaded
        ]
        assert engine.collection.locations() == loaded.collection.locations()

    def test_posting_columns_stay_memory_mapped(self, saved, monkeypatch):
        # Fixture stores are tiny, so force every array through the
        # mmap path: the zero-copy serving property this guards applies
        # to columns at production sizes (above the small-file cutoff).
        monkeypatch.setattr(SegmentReader, "SMALL_ARRAY_BYTES", 0)
        path, _, mined, codec = saved
        loaded = BurstySearchEngine.from_store(path)
        if codec == "packed":
            # Packed columns decode into fresh arrays on touch; the
            # zero-copy property lives one level down, in the packed
            # byte payloads the decoder slices from.
            payload = loaded._segments._scores_packed._payload
            assert isinstance(payload, np.memmap)
            return
        term = next(iter(mined))
        _, scores, ties = loaded._posting_list(term).columns()
        assert isinstance(scores.base if scores.base is not None else scores, np.memmap)
        assert isinstance(ties.base if ties.base is not None else ties, np.memmap)

    def test_verify_store_passes(self, saved):
        path, _, _, _ = saved
        checks = verify_store(path)
        assert any("patterns" in line for line in checks)
        assert any("postings" in line for line in checks)

    def test_verify_store_detects_divergence(self, saved, tmp_path):
        import json
        import os
        import shutil

        path, _, _, codec = saved
        broken = str(tmp_path / "broken")
        shutil.copytree(path, broken)
        # Flip one stored posting score and re-stamp its checksum so
        # open() succeeds: --verify must still catch the divergence
        # against the cold rebuild.  Packed stores hold scores as dict
        # codes, so corrupt the dictionary they decode through.
        name = (
            "postings/scores.npy"
            if codec == "raw"
            else "postings/scores_dict.npy"
        )
        target = os.path.join(broken, *name.split("/"))
        scores = np.load(target)
        scores[0] += 1.0
        with open(target, "wb") as handle:
            np.save(handle, scores)
        from repro.store.format import MANIFEST_NAME, _file_crc32

        manifest_path = os.path.join(broken, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        crc, size = _file_crc32(target)
        manifest["files"][name].update(crc32=crc, size=size)
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(StoreError, match="diverge"):
            verify_store(broken)

    def test_mutating_loaded_collection_detaches_segments(self, saved):
        path, _, _, _ = saved
        loaded = BurstySearchEngine.from_store(path)
        before = ranking(loaded.search("quake", k=5))
        doc = Document("late-arrival", "s0", 2, ("filler",))
        loaded.collection.add_document(doc)
        # Stored segments describe the pre-mutation corpus; the engine
        # must fall back to rebuilding rather than serve stale columns.
        after = ranking(loaded.search("quake", k=5))
        assert loaded._segments is None
        assert after == before  # 'filler' doc cannot affect 'quake'


class TestVerifyMinerConfig:
    def test_non_default_miner_config_verifies(self, tmp_path):
        """Regression: --verify used to re-mine with default settings,
        false-failing any store mined under a tuned configuration."""
        from repro.core import STComb, STCombConfig

        collection = build_collection(seed=13)
        config = STCombConfig(min_interval_score=0.2, min_pattern_streams=1)
        miner = BatchMiner(stcomb=STComb(config=config))
        terms = sorted(collection.vocabulary)
        mined = miner.mine_combinatorial(collection, terms)
        default_mined = BatchMiner().mine_combinatorial(collection, terms)
        assert mined != default_mined  # the tuning really changes output
        engine = BurstySearchEngine(collection, mined)
        path = str(tmp_path / "idx")
        save_search_index(
            path,
            engine,
            "combinatorial",
            terms=terms,
            miner_config=config,
        )
        verify_store(path)  # must not false-fail

    def test_scoring_callable_mismatch_rejected(self, tmp_path):
        """Posting scores embed the relevance function; loading them
        into a differently-scored engine must fail loudly."""
        from repro.search.relevance import binary_relevance

        collection = build_collection(seed=14)
        mined = BatchMiner().mine_regional(collection)
        engine = BurstySearchEngine(
            collection, mined, relevance=binary_relevance
        )
        path = str(tmp_path / "idx")
        save_search_index(path, engine, "regional")
        with pytest.raises(StoreError, match="scoring callables"):
            BurstySearchEngine.from_store(path)
        loaded = BurstySearchEngine.from_store(path, relevance=binary_relevance)
        assert ranking(loaded.search("quake", k=5)) == ranking(
            engine.search("quake", k=5)
        )


class TestNonIntDocIds:
    @pytest.mark.parametrize("kind", ["str", "mixed"])
    def test_round_trip(self, tmp_path, kind):
        collection = build_collection(seed=11, doc_ids=kind)
        mined = BatchMiner().mine_regional(collection)
        engine = BurstySearchEngine(collection, mined)
        path = str(tmp_path / "index")
        save_search_index(path, engine, "regional")
        loaded = BurstySearchEngine.from_store(path)
        for term in mined:
            for strategy in ("ta", "blockmax", "scan"):
                assert ranking(
                    loaded.search(term, k=8, strategy=strategy)
                ) == ranking(engine.search(term, k=8, strategy=strategy))
        verify_store(path)


@pytest.mark.parametrize("codec", ["raw", "packed"])
class TestPostingSegmentCodec:
    def round_trip(self, tmp_path, lists, codec):
        path = str(tmp_path / "postings")
        writer = SegmentWriter(path)
        encode_posting_lists(writer, "postings", lists, codec=codec)
        writer.commit("index")
        return PostingSegment(SegmentReader(path), "postings")

    def test_exotic_score_bits_survive(self, tmp_path, codec):
        """NaN payloads, infinities and subnormals round-trip bit-exactly."""
        scores = np.array(
            [
                float("inf"),
                1.0,
                5e-324,  # smallest subnormal
                float.fromhex("0x0.0000000000001p-1022"),
                -0.0,
                float("-inf"),
            ]
        )
        weird_nan = np.frombuffer(
            np.uint64(0x7FF80000DEADBEEF).tobytes(), dtype=np.float64
        )[0]
        scores = np.concatenate(([weird_nan], scores))
        ids = list(range(len(scores)))
        ties = np.arange(len(scores), dtype=np.int64)
        lists = {"t": PostingArray(ids, scores, tiebreaks=ties, presorted=True)}
        segment = self.round_trip(tmp_path, lists, codec)
        _, out_scores, out_ties = segment.posting_array("t").columns()
        assert np.asarray(out_scores).tobytes() == scores.tobytes()
        assert np.asarray(out_ties).tobytes() == ties.tobytes()

    def test_truncated_list_keeps_shadow_random_access(self, tmp_path, codec):
        postings = [Posting(doc_id=i, score=float(100 - i)) for i in range(20)]
        full = PostingList(postings)
        pruned = full.truncated(5)
        segment = self.round_trip(tmp_path, {"t": pruned}, codec)
        reloaded = segment.posting_array("t")
        assert len(reloaded) == 5
        assert reloaded.sorted_access(5) is None
        # Random access still answers for every pruned-away document.
        for i in range(20):
            assert reloaded.random_access(i) == pruned.random_access(i)
        assert reloaded.random_access("absent") is None

    def test_plain_and_array_lists_agree(self, tmp_path, codec):
        postings = [
            Posting(doc_id=f"d{i}", score=float(i % 3)) for i in range(12)
        ]
        segment = self.round_trip(
            tmp_path,
            {
                "plain": PostingList(postings),
                "array": PostingArray.from_postings(postings),
            },
            codec,
        )
        plain = segment.posting_array("plain").columns()
        array = segment.posting_array("array").columns()
        assert list(plain[0]) == list(array[0])
        assert np.asarray(plain[1]).tobytes() == np.asarray(array[1]).tobytes()
        assert np.asarray(plain[2]).tobytes() == np.asarray(array[2]).tobytes()


class TestFormatCompat:
    def save(self, tmp_path, codec):
        collection = build_collection(seed=17)
        mined = BatchMiner().mine_regional(collection)
        engine = BurstySearchEngine(collection, mined)
        path = str(tmp_path / "idx")
        save_search_index(path, engine, "regional", codec=codec)
        return path, engine, mined

    def test_raw_stores_stay_version1(self, tmp_path):
        """Packed columns bumped ``FORMAT_VERSION`` to 2, but a raw save
        must keep stamping v1: stores written before the bump and raw
        stores written after are the *same* artifact, so pre-bump
        readers keep accepting today's raw output and today's reader
        keeps accepting pre-bump stores."""
        path, engine, mined = self.save(tmp_path, "raw")
        assert SegmentReader(path).format_version == 1
        loaded = BurstySearchEngine.from_store(path)
        for term in mined:
            assert ranking(loaded.search(term, k=8)) == ranking(
                engine.search(term, k=8)
            )
        verify_store(path)

    def test_packed_stores_stamp_version2(self, tmp_path):
        path, _, _ = self.save(tmp_path, "packed")
        assert SegmentReader(path).format_version == FORMAT_VERSION == 2


class TestPackedCodecProperty:
    """Differential property: packed and raw encodings of the same lists
    decode byte-identically — across empty lists, single postings,
    block-boundary lengths, dictionary hits and residual escapes,
    non-integer doc ids and crc32 (non-monotone) tiebreaks."""

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_packed_decodes_byte_identical_to_raw(
        self, tmp_path_factory, data
    ):
        from repro.store.codec import PACK_BLOCK

        palette = data.draw(
            st.lists(
                st.floats(allow_nan=True, allow_infinity=True),
                min_size=1,
                max_size=4,
            )
        )
        rng = random.Random(data.draw(st.integers(0, 2**16)))
        lists = {}
        for index in range(data.draw(st.integers(1, 4))):
            length = data.draw(
                st.sampled_from(
                    [0, 1, 2, PACK_BLOCK - 1, PACK_BLOCK, PACK_BLOCK + 1, 300]
                )
            )
            kind = data.draw(st.sampled_from(["int", "str", "mixed"]))
            ids = list(range(length))
            if kind != "int":
                ids = [
                    f"d{i}" if kind == "str" or i % 2 else i for i in ids
                ]
            scores = [
                rng.choice(palette)
                if rng.random() < 0.7
                else rng.uniform(-1e6, 1e6)
                for _ in range(length)
            ]
            lists[f"t{index}"] = PostingArray(ids, scores)
        tmp = tmp_path_factory.mktemp("codec")
        segments = {}
        for codec in ("raw", "packed"):
            path = str(tmp / codec)
            writer = SegmentWriter(path)
            encode_posting_lists(writer, "postings", lists, codec=codec)
            writer.commit("index")
            segments[codec] = PostingSegment(SegmentReader(path), "postings")
        for term in lists:
            raw_cols = segments["raw"].posting_array(term).columns()
            packed_cols = segments["packed"].posting_array(term).columns()
            assert list(raw_cols[0]) == list(packed_cols[0])
            for raw_col, packed_col in zip(raw_cols[1:], packed_cols[1:]):
                assert (
                    np.asarray(raw_col).tobytes()
                    == np.asarray(packed_col).tobytes()
                )


class TestTrackerRoundTrip:
    def test_restored_tracker_resumes_processing(self, tmp_path):
        """Feeding a restored tracker equals feeding the original."""
        collection = build_collection(seed=7)
        from repro.streams import FrequencyTensor

        tensor = FrequencyTensor(collection)
        locations = collection.locations()
        miner = BatchMiner(truncate_tails=False)
        half = collection.timeline // 2
        # Mine only the first half of the timeline...
        from repro.core.stlocal import STLocalTermTracker

        term = "quake"
        tracker = STLocalTermTracker(locations)
        snapshots = tensor.term_snapshots(term)
        for t in range(half):
            tracker.process(snapshots.get(t, {}))
        path = str(tmp_path / "trackers")
        writer = SegmentWriter(path)
        encode_trackers(writer, "trackers", {term: tracker})
        writer.commit("patterns")
        _, restored_map = decode_trackers(
            SegmentReader(path), "trackers", locations
        )
        restored = restored_map[term]
        assert restored.clock == tracker.clock
        # ...then continue both through the second half.
        for t in range(half, collection.timeline):
            tracker.process(snapshots.get(t, {}))
            restored.process(snapshots.get(t, {}))
        assert restored.patterns(term) == tracker.patterns(term)
        assert restored.rectangle_history == tracker.rectangle_history
        assert restored.open_history == tracker.open_history
        assert restored._history == tracker._history

    def test_columnar_tracker_state_round_trips(self, tmp_path):
        collection = build_collection(seed=9)
        miner = BatchMiner()
        trackers = miner.regional_trackers(collection)
        path = str(tmp_path / "trackers")
        writer = SegmentWriter(path)
        encode_trackers(writer, "trackers", dict(trackers))
        writer.commit("patterns")
        _, restored = decode_trackers(
            SegmentReader(path), "trackers", collection.locations()
        )
        for term, tracker in trackers.items():
            assert restored[term].patterns(term) == tracker.patterns(term)
            assert restored[term].clock == tracker.clock

    def test_custom_baseline_rejected_explicitly(self, tmp_path):
        from repro.core.config import STLocalConfig
        from repro.core.stlocal import STLocalTermTracker
        from repro.temporal.baselines import EWMABaseline

        config = STLocalConfig(baseline_factory=EWMABaseline)
        tracker = STLocalTermTracker({"s": Point(0.0, 0.0)}, config=config)
        tracker.process({"s": 3.0})
        writer = SegmentWriter(str(tmp_path / "t"))
        with pytest.raises(StoreError, match="RunningMeanBaseline"):
            encode_trackers(writer, "trackers", {"x": tracker})

    def test_mine_save_to_persists_patterns_and_trackers(self, tmp_path):
        collection = build_collection(seed=5)
        path = str(tmp_path / "mined")
        mined = BatchMiner().mine_regional(collection, save_to=path)
        assert load_patterns(path) == mined
        _, trackers = load_trackers(path)
        assert set(trackers) == set(collection.vocabulary)

    def test_non_scalar_stream_ids_rejected_at_save(self, tmp_path):
        """A store that commits must always load: tuple stream ids (legal
        everywhere else — streams are Hashable) cannot survive a JSON
        round trip, so the save must fail, not produce a store that
        crashes on decode."""
        collection = SpatiotemporalCollection(timeline=12)
        for i in range(3):
            collection.add_stream(("city", i), Point(float(i), 0.0))
        doc = 0
        for t in range(12):
            for i in range(3):
                collection.add_document(
                    Document(doc, ("city", i), t, ("filler",))
                )
                doc += 1
        for t in (6, 7, 8):
            for i in (0, 1):
                for _ in range(4):
                    collection.add_document(
                        Document(doc, ("city", i), t, ("quake", "quake"))
                    )
                    doc += 1
        mined = BatchMiner().mine_combinatorial(collection)
        assert mined  # the workload really produces tuple-id patterns
        with pytest.raises(StoreError, match="not persistable"):
            BatchMiner().mine_combinatorial(
                collection, save_to=str(tmp_path / "comb")
            )
        with pytest.raises(StoreError, match="not persistable"):
            BatchMiner().mine_regional(
                collection, save_to=str(tmp_path / "reg")
            )

    def test_mine_combinatorial_save_to(self, tmp_path):
        collection = build_collection(seed=6)
        path = str(tmp_path / "comb")
        mined = BatchMiner().mine_combinatorial(collection, save_to=path)
        assert load_patterns(path) == mined
        with pytest.raises(StoreError, match="no tracker state"):
            load_trackers(path)


class TestLiveCheckpoint:
    def drive(self, engine, live, upto, seed=21):
        rng = random.Random(seed)
        doc = getattr(self, "_doc", 0)
        for t in range(getattr(self, "_from", 0), upto):
            for sid in list(live.locations()):
                if rng.random() < 0.6:
                    term = rng.choice(("storm", "filler"))
                    live.ingest(Document(doc, sid, t, (term, term)))
                    doc += 1
        self._doc = doc
        self._from = upto

    def build(self):
        self._doc, self._from = 0, 0
        live = LiveCollection(32)
        for i in range(4):
            live.add_stream(f"s{i}", Point(float(i % 2), float(i // 2)))
        return live, LiveSearchEngine(live)

    def test_stats_reset_after_restore(self, tmp_path):
        live, engine = self.build()
        self.drive(engine, live, 16)
        engine.search("storm", k=5)
        engine.search("storm", k=5)
        assert engine.stats.cache_hits == 1
        assert engine.stats.cache_misses == 1
        assert engine.stats.rebuilds == 1
        path = str(tmp_path / "ckpt")
        engine.checkpoint(path)
        engine.restore(path)
        # The backing index identity changed: stale hit-rates must not
        # survive into the restored engine.
        assert engine.stats.cache_hits == 0
        assert engine.stats.cache_misses == 0
        assert engine.stats.rebuilds == 0
        assert engine.cached_queries == 0
        engine.search("storm", k=5)
        assert engine.stats.cache_misses == 1
        # Served from the persisted base — no rebuild, no delta.
        assert engine.stats.rebuilds == 0
        assert engine.stats.served_current == 1

    def test_restore_resumes_mid_stream(self, tmp_path):
        live, engine = self.build()
        self.drive(engine, live, 12)
        before = ranking(engine.search("storm", k=6))
        path = str(tmp_path / "ckpt")
        engine.checkpoint(path)

        restored = LiveSearchEngine.from_checkpoint(path)
        assert ranking(restored.search("storm", k=6)) == before
        assert restored.live.watermark == live.watermark
        assert restored.live.epoch == live.epoch

        # Continue ingesting the identical tail into both engines.
        self._from = 12
        saved_doc, saved_from = self._doc, self._from
        self.drive(engine, live, 24, seed=5)
        self._doc, self._from = saved_doc, saved_from
        self.drive(restored, restored.live, 24, seed=5)
        for k in (3, 8):
            assert ranking(restored.search("storm", k=k)) == ranking(
                engine.search("storm", k=k)
            )

    def test_restored_engine_matches_cold_batch_rebuild(self, tmp_path):
        live, engine = self.build()
        self.drive(engine, live, 20)
        engine.search("storm", k=5)
        path = str(tmp_path / "ckpt")
        engine.checkpoint(path)
        restored = LiveSearchEngine.from_checkpoint(path)

        cold = SpatiotemporalCollection(live.timeline)
        for sid, point in live.locations().items():
            cold.add_stream(sid, point)
        for document in live.collection.documents():
            cold.add_document(document)
        batch = BurstySearchEngine(cold, BatchMiner().mine_regional(cold))
        assert ranking(restored.search("storm", k=10)) == ranking(
            batch.search("storm", k=10)
        )
        verify_store(path)

    def test_restore_rejects_wrong_kind(self, saved, tmp_path):
        path, _, _, _ = saved
        live, engine = self.build()
        with pytest.raises(StoreError, match="'live'"):
            engine.restore(path)

    def test_config_mismatch_rejected(self, tmp_path):
        from repro.core.config import STLocalConfig

        live, engine = self.build()
        self.drive(engine, live, 8)
        path = str(tmp_path / "ckpt")
        engine.checkpoint(path)
        other = LiveSearchEngine(
            LiveCollection(1), config=STLocalConfig(warmup=9)
        )
        with pytest.raises(StoreError, match="STLocal settings"):
            other.restore(path)


class TestPatternCodecProperty:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_regional_patterns_round_trip(self, tmp_path_factory, data):
        from repro.core.patterns import RegionalPattern
        from repro.intervals.interval import Interval
        from repro.spatial.geometry import Rectangle

        n_terms = data.draw(st.integers(0, 3))
        patterns = {}
        for index in range(n_terms):
            entries = []
            for _ in range(data.draw(st.integers(0, 4))):
                x0 = data.draw(st.floats(-50, 50))
                y0 = data.draw(st.floats(-50, 50))
                start = data.draw(st.integers(0, 30))
                streams = frozenset(
                    data.draw(
                        st.lists(
                            st.one_of(
                                st.integers(0, 9),
                                st.text("ab", min_size=1, max_size=3),
                            ),
                            min_size=1,
                            max_size=4,
                            unique=True,
                        )
                    )
                )
                entries.append(
                    RegionalPattern(
                        term=f"t{index}",
                        region=Rectangle(
                            x0,
                            y0,
                            x0 + data.draw(st.floats(0, 10)),
                            y0 + data.draw(st.floats(0, 10)),
                        ),
                        streams=streams,
                        timeframe=Interval(
                            start, start + data.draw(st.integers(0, 10))
                        ),
                        score=data.draw(
                            st.floats(
                                allow_nan=False, allow_infinity=True
                            )
                        ),
                        bursty_streams=data.draw(
                            st.one_of(st.none(), st.just(streams))
                        ),
                    )
                )
            patterns[f"t{index}"] = entries
        path = str(tmp_path_factory.mktemp("pat") / "store")
        writer = SegmentWriter(path)
        encode_patterns(writer, "patterns", patterns, "regional")
        writer.commit("patterns")
        _, decoded = decode_patterns(SegmentReader(path), "patterns")
        assert decoded == patterns


class TestEngineRoundTripProperty:
    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_random_corpora_round_trip(self, tmp_path_factory, data):
        seed = data.draw(st.integers(0, 2**16))
        doc_ids = data.draw(st.sampled_from(["int", "str", "mixed"]))
        streams = data.draw(st.integers(2, 6))
        timeline = data.draw(st.integers(12, 28))
        collection = build_collection(
            seed=seed, streams=streams, timeline=timeline, doc_ids=doc_ids
        )
        codec = data.draw(st.sampled_from(["raw", "packed"]))
        mined = BatchMiner().mine_regional(collection)
        engine = BurstySearchEngine(collection, mined)
        path = str(tmp_path_factory.mktemp("rt") / "store")
        save_search_index(path, engine, "regional", codec=codec)
        loaded = BurstySearchEngine.from_store(path)
        k = data.draw(st.integers(1, 12))
        queries = sorted(mined) + ["quake storm"]
        for query in queries:
            for strategy in ("ta", "blockmax", "scan"):
                assert ranking(
                    loaded.search(query, k=k, strategy=strategy)
                ) == ranking(engine.search(query, k=k, strategy=strategy))


class TestCrashSchedules:
    """Hypothesis sweep over ingest/checkpoint/crash interleavings.

    A live engine ingests in bursts and checkpoints between them; the
    final checkpoint is killed at an arbitrary mutating-IO boundary
    (drawn by Hypothesis, executed by the deterministic fault shim).
    Recovery must land exactly on a *completed* checkpoint — the
    crashed one if its manifest committed (byte-identical to an
    unfaulted run), else the previous one (untouched, byte-identical
    to the snapshot taken when it was written) — and never between
    two.  Both posting codecs are drawn into the sweep.
    """

    @given(data=st.data())
    @settings(max_examples=6, deadline=None)
    def test_restore_matches_last_completed_checkpoint(
        self, tmp_path_factory, data
    ):
        import os

        from repro.errors import StoreCorruptionError
        from repro.faults import (
            FaultPlan,
            FaultRule,
            FaultyIO,
            InjectedCrash,
            install,
            record_operations,
            snapshot_files,
        )
        from repro.store import MANIFEST_NAME

        codec = data.draw(st.sampled_from(["raw", "packed"]))
        tmp = tmp_path_factory.mktemp("sched")
        live = LiveCollection(48)
        for i in range(4):
            live.add_stream(f"s{i}", Point(float(i % 2), float(i // 2)))
        engine = LiveSearchEngine(live)
        rng = random.Random(data.draw(st.integers(0, 2**16)))
        doc, upto = 0, 0

        def ingest_burst(steps):
            nonlocal doc, upto
            for t in range(upto, upto + steps):
                for sid in list(live.locations()):
                    if rng.random() < 0.7:
                        term = rng.choice(("storm", "filler"))
                        live.ingest(Document(doc, sid, t, (term, term)))
                        doc += 1
            upto += steps

        checkpoints = []
        for step in range(data.draw(st.integers(1, 2))):
            ingest_burst(data.draw(st.integers(2, 4)))
            engine.search("storm", k=5)
            path = str(tmp / f"ckpt{step}")
            engine.checkpoint(path, codec=codec)
            checkpoints.append(
                (path, snapshot_files(path), ranking(engine.search("storm", k=5)))
            )
        # More ingestion, so the final (crashed) checkpoint would
        # persist state the previous one does not hold.
        ingest_burst(data.draw(st.integers(1, 3)))
        final_ranking = ranking(engine.search("storm", k=5))

        reference_dir = str(tmp / "reference")
        engine.checkpoint(reference_dir, codec=codec)
        reference = snapshot_files(reference_dir)
        ops = record_operations(
            lambda p: engine.checkpoint(p, codec=codec),
            str(tmp / "recording"),
        )
        crash_index = data.draw(st.integers(0, len(ops) - 1))

        target = str(tmp / "crashed")
        plan = FaultPlan(
            [FaultRule(op="mutate", action="crash_before", index=crash_index)]
        )
        with install(FaultyIO(plan)):
            with pytest.raises(InjectedCrash):
                engine.checkpoint(target, codec=codec)

        if os.path.exists(os.path.join(target, MANIFEST_NAME)):
            # The kill landed at/after the atomic rename: the store is
            # complete and byte-identical to the unfaulted reference.
            SegmentReader(target, verify=True)
            assert snapshot_files(target) == reference
            recovery, expected = target, final_ranking
        else:
            # Not committed: the reader refuses with a typed error and
            # the previous completed checkpoint is bit-for-bit intact.
            with pytest.raises(StoreCorruptionError):
                SegmentReader(target)
            path, snapshot, at_checkpoint = checkpoints[-1]
            assert snapshot_files(path) == snapshot
            recovery, expected = path, at_checkpoint
        restored = LiveSearchEngine.from_checkpoint(recovery)
        assert ranking(restored.search("storm", k=5)) == expected
