"""Unit + property tests for the calibrated query planner.

Covers the three planning tiers (term-set memory, fitted cost model,
cold-log heuristic fallback), the regret property the bench gates on,
hot-combination mining with version-token invalidation, JSONL query-log
and JSON model persistence (fit → save → reload → identical choices),
store round-trips, and the live-engine integration's byte-identity
against a cold batch rebuild.

Timing is fully deterministic here: every planner is built with a fake
monotonic clock, and where the tests need "measured" costs they inject
synthetic per-strategy cost functions through ``observe`` — the regret
property then checks the planner's choices against the exhaustive
per-query argmin of those same costs.
"""

import json
import random

import pytest

from repro.columnar.postings import PostingArray
from repro.errors import SearchError
from repro.search import (
    CANDIDATES,
    CalibratedPlanner,
    CostModel,
    Posting,
    PostingList,
    QueryLog,
    QueryRecord,
    plan_strategy,
    topk,
    topk_many,
    true_length,
)


class FakeClock:
    """Deterministic monotonic clock; advance it by hand."""

    def __init__(self) -> None:
        self.now = 0.0
        self.step = 0.0

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def make_planner(**kwargs):
    clock = FakeClock()
    kwargs.setdefault("hot_support", 0)  # isolate strategy planning
    planner = CalibratedPlanner(clock=clock, **kwargs)
    return planner, clock


def make_lists(rng, n_lists=None, max_len=400):
    lists = []
    for _ in range(n_lists or rng.randint(1, 3)):
        length = rng.randint(5, max_len)
        ids = rng.sample(range(max_len * 4), length)
        lists.append(PostingArray(ids, [rng.random() for _ in ids]))
    return lists


def synthetic_cost(strategy, lists, k):
    """A deterministic per-strategy cost, linear in the model features.

    Chosen so that neither strategy dominates: scan's cost follows the
    total true length, blockmax's follows k and the shortest list.
    """
    visible = [len(pl) for pl in lists]
    true = [true_length(pl) for pl in lists]
    if strategy == "scan":
        return 1e-4 + 2e-6 * sum(true)
    return 3e-4 + 4e-6 * (k * len(lists)) + 1e-6 * min(visible)


def calibrate(planner, workload):
    """Observe both candidate strategies on every query with the
    synthetic costs (what an explicit per-strategy pass produces)."""
    for terms, lists, k in workload:
        for strategy in CANDIDATES:
            planner.observe(
                lists=lists,
                k=k,
                strategy=strategy,
                sorted_accesses=sum(len(pl) for pl in lists),
                elapsed=synthetic_cost(strategy, lists, k),
                terms=terms,
            )


def build_workload(seed, n_queries=24):
    rng = random.Random(seed)
    workload = []
    for index in range(n_queries):
        lists = make_lists(rng)
        workload.append(
            (tuple(sorted({f"t{index}", f"u{index % 7}"})), lists, rng.randint(1, 20))
        )
    return workload


class TestColdFallback:
    def test_cold_planner_defers_to_heuristic(self):
        planner, _ = make_planner()
        rng = random.Random(0)
        for _ in range(10):
            lists = make_lists(rng)
            strategy, source = planner.plan(lists, 3, ("q",))
            assert source == "heuristic"
            assert strategy == plan_strategy(lists, 3)

    def test_underfed_model_stays_cold(self):
        planner, _ = make_planner(min_samples=50, refit_every=1)
        calibrate(planner, build_workload(1, n_queries=4))
        assert not planner.model.fitted
        # Unknown term set + cold model → heuristic, not a half-fit.
        _, source = planner.plan(make_lists(random.Random(2)), 3, ("new",))
        assert source == "heuristic"

    def test_explore_tier_is_opt_in(self):
        planner, _ = make_planner(explore=True)
        lists = make_lists(random.Random(3))
        first, source = planner.plan(lists, 3, ("x",))
        assert source == "explore"
        planner.observe(
            lists=lists, k=3, strategy=first, sorted_accesses=1, elapsed=0.5,
            terms=("x",),
        )
        second, source = planner.plan(lists, 3, ("x",))
        assert source == "explore"
        assert second != first  # least-sampled candidate next
        planner.observe(
            lists=lists, k=3, strategy=second, sorted_accesses=1, elapsed=0.1,
            terms=("x",),
        )
        # Both sampled → memory tier takes over with the empirical best.
        chosen, source = planner.plan(lists, 3, ("x",))
        assert source == "memory"
        assert chosen == second


class TestRegretProperty:
    def test_memory_tier_always_picks_the_per_query_best(self):
        """On a calibrated workload the planner's choice must match the
        exhaustive per-query argmin exactly (regret 1.0)."""
        planner, _ = make_planner(min_samples=8, refit_every=0)
        workload = build_workload(11)
        calibrate(planner, workload)
        for terms, lists, k in workload:
            chosen, source = planner.plan(lists, k, terms)
            assert source == "memory"
            costs = {s: synthetic_cost(s, lists, k) for s in CANDIDATES}
            assert costs[chosen] == min(costs.values())

    @pytest.mark.parametrize("seed", [5, 17, 23])
    def test_model_tier_regret_bound_on_unseen_queries(self, seed):
        """The fitted model, asked about *unseen* term sets, must stay
        within the bench's regret bound (cost of its choice ≤ 1.10 ×
        the per-query best) — the costs are linear in the features, so
        the least-squares fit should recover them almost exactly."""
        planner, _ = make_planner(min_samples=8, refit_every=0)
        calibrate(planner, build_workload(seed, n_queries=30))
        assert planner.fit()
        rng = random.Random(seed + 1000)
        regrets = []
        for index in range(30):
            lists = make_lists(rng)
            k = rng.randint(1, 20)
            chosen, source = planner.plan(lists, k, (f"unseen{index}",))
            assert source == "model"
            costs = {s: synthetic_cost(s, lists, k) for s in CANDIDATES}
            regrets.append(costs[chosen] / min(costs.values()))
        regrets.sort()
        assert regrets[len(regrets) // 2] <= 1.10  # median regret bound
        assert max(regrets) <= 1.5  # no catastrophic mispick either

    def test_fitted_choices_survive_persistence(self):
        """fit → save → reload must plan identically (the satellite's
        log-roundtrip requirement)."""
        planner, _ = make_planner(min_samples=8, refit_every=0)
        calibrate(planner, build_workload(7, n_queries=20))
        planner.fit()
        reloaded = CalibratedPlanner.from_payload(
            json.loads(json.dumps(planner.to_payload())), clock=FakeClock()
        )
        rng = random.Random(99)
        for index in range(25):
            lists = make_lists(rng)
            k = rng.randint(1, 20)
            terms = (f"q{index % 5}",)
            assert planner.plan(lists, k, terms) == reloaded.plan(
                lists, k, terms
            )


class TestQueryLogPersistence:
    def test_jsonl_roundtrip(self, tmp_path):
        log = QueryLog()
        rng = random.Random(4)
        for index in range(9):
            log.append(
                QueryRecord(
                    terms=(f"a{index}", "b"),
                    k=rng.randint(1, 10),
                    visible=(rng.randint(1, 50), rng.randint(1, 50)),
                    true=(rng.randint(50, 99), rng.randint(50, 99)),
                    strategy=rng.choice(CANDIDATES),
                    sorted_accesses=rng.randint(0, 1000),
                    elapsed=rng.random(),
                    source="explicit",
                )
            )
        path = str(tmp_path / "queries.jsonl")
        log.save(path)
        assert list(QueryLog.load(path)) == list(log)

    def test_log_capacity_bounds_and_drops_oldest(self):
        log = QueryLog(capacity=3)
        for index in range(5):
            log.append(
                QueryRecord(
                    terms=(), k=1, visible=(index,), true=(index,),
                    strategy="scan", sorted_accesses=0, elapsed=0.0,
                )
            )
        assert len(log) == 3
        assert [record.visible[0] for record in log] == [2, 3, 4]

    def test_unsupported_format_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"format": 999}\n')
        with pytest.raises(SearchError):
            QueryLog.load(str(path))

    def test_missing_and_corrupt_files_raise_search_error(self, tmp_path):
        with pytest.raises(SearchError):
            QueryLog.load(str(tmp_path / "absent.jsonl"))
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(SearchError):
            QueryLog.load(str(bad))
        with pytest.raises(SearchError):
            CalibratedPlanner.load(str(tmp_path / "absent.json"))

    def test_replay_rebuilds_memory_and_support(self):
        planner, _ = make_planner(min_samples=2, refit_every=0)
        workload = build_workload(13, n_queries=6)
        calibrate(planner, workload)
        fresh = CalibratedPlanner(clock=FakeClock(), min_samples=2)
        fresh.replay(planner.log)
        assert fresh.fit()
        terms, lists, k = workload[0]
        assert fresh.plan(lists, k, terms)[1] == "memory"
        assert fresh.hot_combinations()  # support mined from the log

    def test_model_file_roundtrip(self, tmp_path):
        planner, _ = make_planner(min_samples=8, refit_every=0)
        calibrate(planner, build_workload(21, n_queries=20))
        planner.fit()
        path = str(tmp_path / "model.json")
        planner.save(path)
        reloaded = CalibratedPlanner.load(path, clock=FakeClock())
        assert reloaded.model.fitted
        lists = make_lists(random.Random(5))
        assert reloaded.plan(lists, 4, ("zz",)) == planner.plan(
            lists, 4, ("zz",)
        )

    def test_unsupported_model_format_rejected(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text('{"format": 999}')
        with pytest.raises(SearchError):
            CalibratedPlanner.load(str(path))


class TestHotCombinations:
    def lists(self):
        n = 60
        return [
            PostingArray(list(range(n)), [float((i * 13) % 37) for i in range(n)]),
            PostingArray(
                list(range(0, n, 2)), [float((i * 7) % 31) for i in range(0, n, 2)]
            ),
        ]

    def test_merged_ranking_is_byte_identical_at_any_k(self):
        planner = CalibratedPlanner(clock=FakeClock(), hot_support=2)
        lists = self.lists()
        terms = ("a", "b")
        baseline = {
            k: [(r.doc_id, r.score) for r in topk(lists, k)[0]]
            for k in (1, 3, 10, 100)
        }
        for round_index in range(4):
            for k in (1, 3, 10, 100):
                results, stats = topk(
                    lists, k, planner=planner, terms=terms, token=("v", 0)
                )
                assert [(r.doc_id, r.score) for r in results] == baseline[k]
                if round_index >= 2:
                    assert stats.strategy == "merged"
                    assert stats.source == "merged"
                    assert stats.sorted_accesses == 0
        assert planner.merged_hits > 0 and planner.merged_builds == 1

    def test_token_mismatch_invalidates_and_rebuilds(self):
        planner = CalibratedPlanner(clock=FakeClock(), hot_support=1)
        lists = self.lists()
        terms = ("a", "b")
        first, stats = topk(lists, 5, planner=planner, terms=terms, token=1)
        assert stats.strategy == "merged"
        # Simulate mutation: new posting data under a new token.
        mutated = [
            PostingArray([7, 8], [100.0, 90.0]),
            PostingArray([7, 8], [50.0, 40.0]),
        ]
        results, stats = topk(mutated, 5, planner=planner, terms=terms, token=2)
        assert stats.strategy == "merged"  # rebuilt, not served stale
        expected, _ = topk(mutated, 5)
        assert [(r.doc_id, r.score) for r in results] == [
            (r.doc_id, r.score) for r in expected
        ]
        assert planner.merged_builds == 2

    def test_invalidate_merged_drops_cache(self):
        planner = CalibratedPlanner(clock=FakeClock(), hot_support=1)
        lists = self.lists()
        topk(lists, 5, planner=planner, terms=("a", "b"), token=1)
        assert planner.stats()["merged_cached"] == 1
        planner.invalidate_merged()
        assert planner.stats()["merged_cached"] == 0
        # Same token after the wholesale drop: must rebuild, not hit.
        _, stats = topk(lists, 5, planner=planner, terms=("a", "b"), token=1)
        assert stats.strategy == "merged"
        assert planner.merged_builds == 2

    def test_lru_eviction_bounds_merged_cache(self):
        planner = CalibratedPlanner(
            clock=FakeClock(), hot_support=1, max_merged=1
        )
        lists = self.lists()
        topk(lists, 5, planner=planner, terms=("a", "b"), token=1)
        topk(lists, 5, planner=planner, terms=("c", "d"), token=1)
        assert planner.stats()["merged_cached"] == 1
        hottest = planner.hot_combinations(2)
        assert {terms for terms, _ in hottest} == {("a", "b"), ("c", "d")}

    def test_topk_many_threads_planner_per_query(self):
        planner = CalibratedPlanner(clock=FakeClock(), hot_support=2)
        lists = self.lists()
        queries = [lists, [lists[0]], lists]
        terms_list = [("a", "b"), ("a",), ("a", "b")]
        for _ in range(3):
            outcomes = topk_many(
                queries, 4, planner=planner, terms_list=terms_list, token=0
            )
            solo = [topk(q, 4)[0] for q in queries]
            for (results, _), expected in zip(outcomes, solo):
                assert [(r.doc_id, r.score) for r in results] == [
                    (r.doc_id, r.score) for r in expected
                ]
        assert planner.merged_hits > 0


class TestEngineIntegration:
    def test_static_engine_with_planner_matches_without(self):
        from tests.test_search import build_event_collection

        from repro.core import STComb
        from repro.search import BurstySearchEngine

        collection, _ = build_event_collection()
        patterns = STComb().mine(collection, terms=["quake"])
        plain = BurstySearchEngine(collection, patterns)
        planner = CalibratedPlanner(clock=FakeClock(), hot_support=1)
        planned = BurstySearchEngine(collection, patterns, planner=planner)
        reference = [
            (r.document.doc_id, r.score) for r in plain.search("quake", k=5)
        ]
        for _ in range(3):
            got = [
                (r.document.doc_id, r.score)
                for r in planned.search("quake", k=5)
            ]
            assert got == reference
        _, stats = planned.search_with_stats("quake", k=5)
        assert stats.strategy == "merged"

    def test_live_engine_with_planner_matches_plain_serving(self):
        from repro.core.config import STLocalConfig
        from repro.live import LiveCollection, LiveSearchEngine
        from repro.spatial import Point
        from repro.streams import Document

        live = LiveCollection(16)
        for i in range(4):
            live.add_stream(f"s{i}", Point(float(i * 10), 0.0))
        planner = CalibratedPlanner(clock=FakeClock(), hot_support=2)
        planned = LiveSearchEngine(
            live, config=STLocalConfig(warmup=2), planner=planner
        )
        plain = LiveSearchEngine(live, config=STLocalConfig(warmup=2))
        doc_id = 0
        for t in range(10):
            docs = []
            if 6 <= t <= 8:
                for sid in ("s0", "s1"):
                    docs.append(Document(doc_id, sid, t, ("boom", "boom")))
                    doc_id += 1
            live.ingest_snapshot(t, docs)

        def serve(engine, k):
            return [
                (r.document.doc_id, r.score)
                for r in engine.search("boom", k=k)
            ]

        reference = serve(plain, 3)
        assert reference
        # Distinct k per call so the live engine's own result cache
        # doesn't absorb the repeats before they reach the planner.
        for k in (3, 4, 5, 6):
            assert serve(planned, k) == serve(plain, k)
        assert planner.merged_builds == 1
        # Ingest more matching docs: term_version bumps, the merged
        # entry goes stale, and serving must reflect the new corpus.
        for t in (11, 12):
            live.ingest_snapshot(
                t, [Document(100 + t, "s2", t, ("boom", "boom"))]
            )
        updated = serve(planned, 3)
        assert updated == serve(plain, 3)
        assert planner.merged_builds == 2  # rebuilt under the new token

    def test_store_roundtrip_reattaches_planner(self, tmp_path):
        from tests.test_search import build_event_collection

        from repro.pipeline import BatchMiner
        from repro.search import BurstySearchEngine

        collection, _ = build_event_collection()
        trackers = BatchMiner().regional_trackers(collection)
        patterns = {
            term: tracker.patterns(term)
            for term, tracker in trackers.items()
            if tracker.patterns(term)
        }
        planner, _ = make_planner(min_samples=4, refit_every=0)
        calibrate(planner, build_workload(31, n_queries=12))
        planner.fit()
        engine = BurstySearchEngine(collection, patterns, planner=planner)
        path = str(tmp_path / "idx")
        engine.save(path)
        reloaded = BurstySearchEngine.from_store(path)
        assert reloaded.planner is not None
        assert reloaded.planner.model.fitted
        rng = random.Random(41)
        for index in range(10):
            lists = make_lists(rng)
            k = rng.randint(1, 10)
            terms = (f"w{index}",)
            assert reloaded.planner.plan(lists, k, terms) == planner.plan(
                lists, k, terms
            )
        assert [
            (r.document.doc_id, r.score)
            for r in reloaded.search("quake", k=3)
        ] == [
            (r.document.doc_id, r.score) for r in engine.search("quake", k=3)
        ]


class TestValidation:
    def test_invalid_constructor_arguments(self):
        with pytest.raises(SearchError):
            QueryLog(capacity=0)
        with pytest.raises(SearchError):
            CostModel(min_samples=0)
        with pytest.raises(SearchError):
            CalibratedPlanner(hot_support=-1)
        with pytest.raises(SearchError):
            CalibratedPlanner(max_merged=0)

    def test_predict_requires_fit(self):
        model = CostModel()
        with pytest.raises(SearchError):
            model.predict([10], [10], 3)

    def test_explain_has_no_side_effects(self):
        planner = CalibratedPlanner(clock=FakeClock(), hot_support=5)
        lists = [PostingArray([1, 2], [2.0, 1.0])]
        before = planner.stats()
        info = planner.explain(lists, 2, ("a",))
        assert info["strategy"] in CANDIDATES
        assert info["heuristic"] == plan_strategy(lists, 2)
        assert planner.stats() == before

    def test_observe_with_fake_clock_is_deterministic(self):
        """The injected-clock seam: identical runs produce identical
        logs, bit for bit."""

        def run():
            clock = FakeClock()
            clock.step = 0.5
            planner = CalibratedPlanner(clock=clock, hot_support=0)
            lists = [PostingArray(list(range(20)), [float(i) for i in range(20)])]
            start = planner.clock()
            topk(lists, 3, planner=planner, terms=("t",), token=0)
            assert planner.clock() > start
            return [record.to_json() for record in planner.log]

        assert run() == run()