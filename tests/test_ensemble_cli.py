"""Ensemble engine (Section 6.3's suggestion) and the CLI."""

import pytest

from repro.core import STComb, STLocal
from repro.errors import SearchError
from repro.eval import exp_figure9
from repro.search import BurstySearchEngine, TemporalSearchEngine
from repro.search.ensemble import EnsembleSearchEngine
from repro.spatial import Point
from repro.streams import Document, SpatiotemporalCollection


@pytest.fixture(scope="module")
def setting():
    coll = SpatiotemporalCollection(timeline=12)
    for i, sid in enumerate(("a", "b", "c")):
        coll.add_stream(sid, Point(float(i), 0.0))
    doc_id = 0
    for sid in ("a", "b", "c"):
        for t in range(12):
            coll.add_document(Document(doc_id, sid, t, ("filler",)))
            doc_id += 1
    for sid in ("a", "b"):
        for t in (5, 6, 7):
            for _ in range(4):
                coll.add_document(
                    Document(doc_id, sid, t, ("quake", "quake"), event_id=1)
                )
                doc_id += 1
    comb_engine = BurstySearchEngine(coll, STComb().mine(coll, ["quake"]))
    local_engine = BurstySearchEngine(coll, STLocal().mine(coll, ["quake"]))
    tb_engine = TemporalSearchEngine(coll)
    return coll, comb_engine, local_engine, tb_engine


class TestEnsemble:
    def test_fused_results(self, setting):
        _, comb, local, tb = setting
        ensemble = EnsembleSearchEngine(
            {"STComb": comb, "STLocal": local, "TB": tb}
        )
        results = ensemble.search("quake", k=5)
        assert results
        points = [r.points for r in results]
        assert points == sorted(points, reverse=True)
        for result in results:
            assert result.document.frequency("quake") > 0
            assert set(result.supporters) <= {"STComb", "STLocal", "TB"}

    def test_unanimous_document_ranks_first(self, setting):
        _, comb, local, tb = setting
        ensemble = EnsembleSearchEngine(
            {"STComb": comb, "STLocal": local, "TB": tb}
        )
        results = ensemble.search("quake", k=3)
        assert len(results[0].supporters) >= 2

    def test_weights_respected(self, setting):
        _, comb, local, _ = setting
        heavy = EnsembleSearchEngine(
            {"STComb": comb, "STLocal": local},
            weights={"STComb": 5.0},
        )
        results = heavy.search("quake", k=3)
        assert results

    def test_empty_ensemble_rejected(self):
        with pytest.raises(SearchError):
            EnsembleSearchEngine({})

    def test_unknown_weight_rejected(self, setting):
        _, comb, _, _ = setting
        with pytest.raises(SearchError):
            EnsembleSearchEngine({"STComb": comb}, weights={"bogus": 1.0})

    def test_invalid_k(self, setting):
        _, comb, _, _ = setting
        ensemble = EnsembleSearchEngine({"STComb": comb})
        with pytest.raises(SearchError):
            ensemble.search("quake", k=0)

    def test_single_engine_preserves_order(self, setting):
        _, comb, _, _ = setting
        ensemble = EnsembleSearchEngine({"STComb": comb})
        fused = [r.document.doc_id for r in ensemble.search("quake", k=4)]
        direct = [h.document.doc_id for h in comb.search("quake", k=4)]
        assert fused == direct


class TestCLI:
    def test_figure9_subcommand(self, capsys):
        from repro.cli import main

        assert main(["figure9"]) == 0
        output = capsys.readouterr().out
        assert "Weibull pdf curves" in output

    def test_invalid_subcommand(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["bogus-experiment"])

    def test_parser_defaults(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(["table1"])
        assert args.background_rate == 2.0
        assert args.seed == 0

    def test_figure8_custom_streams(self, capsys):
        from repro.cli import main

        assert main(["figure8", "--streams", "50", "100"]) == 0
        output = capsys.readouterr().out
        assert "50" in output and "100" in output

    def test_mine_parser_defaults(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(["mine"])
        assert args.workers == 1
        assert args.miner == "both"
        assert args.top_terms is None
        sharded = _build_parser().parse_args(
            ["mine", "--workers", "4", "--miner", "stlocal"]
        )
        assert sharded.workers == 4
        assert sharded.miner == "stlocal"
