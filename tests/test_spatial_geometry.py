"""Points, rectangles, MBR, geodesics, MDS, grids, index."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EmptyInputError, InvalidGeometryError
from repro.spatial import (
    EARTH_RADIUS_KM,
    GridCell,
    IntervalSpatialIndex,
    Point,
    Rectangle,
    SpatialIndex,
    UniformGrid,
    classical_mds,
    distance_matrix,
    haversine,
    mbr,
    mds_points,
    stress,
    vincenty,
)
from repro.spatial.grid import interleave_codes, morton_windows

coords = st.floats(-100.0, 100.0, allow_nan=False)
points_st = st.builds(Point, coords, coords)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    @given(points_st, points_st)
    def test_distance_symmetric(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points_st)
    def test_distance_self_zero(self, a):
        assert a.distance_to(a) == 0.0


class TestRectangle:
    def test_inverted_rejected(self):
        with pytest.raises(InvalidGeometryError):
            Rectangle(1, 0, 0, 1)

    def test_degenerate_allowed(self):
        r = Rectangle(1, 1, 1, 1)
        assert r.area == 0.0
        assert r.contains_point(Point(1, 1))

    def test_contains_boundary(self):
        r = Rectangle(0, 0, 2, 2)
        assert r.contains_point(Point(0, 0))
        assert r.contains_point(Point(2, 2))
        assert not r.contains_point(Point(2.01, 1))

    def test_contains_rectangle(self):
        outer = Rectangle(0, 0, 10, 10)
        inner = Rectangle(2, 2, 5, 5)
        assert outer.contains_rectangle(inner)
        assert not inner.contains_rectangle(outer)
        assert outer.contains_rectangle(outer)

    def test_intersection(self):
        a = Rectangle(0, 0, 4, 4)
        b = Rectangle(2, 2, 8, 8)
        assert a.intersection(b) == Rectangle(2, 2, 4, 4)

    def test_disjoint_intersection(self):
        assert Rectangle(0, 0, 1, 1).intersection(Rectangle(5, 5, 6, 6)) is None

    def test_union_span(self):
        a = Rectangle(0, 0, 1, 1)
        b = Rectangle(5, 5, 6, 6)
        assert a.union_span(b) == Rectangle(0, 0, 6, 6)

    def test_expanded(self):
        assert Rectangle(1, 1, 2, 2).expanded(1) == Rectangle(0, 0, 3, 3)

    def test_center(self):
        assert Rectangle(0, 0, 4, 2).center == Point(2, 1)

    def test_corners(self):
        corners = Rectangle(0, 0, 1, 2).corners()
        assert corners == (Point(0, 0), Point(1, 0), Point(1, 2), Point(0, 2))

    def test_points_inside(self):
        r = Rectangle(0, 0, 2, 2)
        pts = [Point(1, 1), Point(3, 3)]
        assert r.points_inside(pts) == [Point(1, 1)]

    @given(points_st, points_st, points_st)
    def test_mbr_contains_all(self, a, b, c):
        box = mbr([a, b, c])
        for point in (a, b, c):
            assert box.contains_point(point)

    def test_mbr_empty(self):
        with pytest.raises(EmptyInputError):
            mbr([])


class TestGeodesic:
    def test_zero_distance(self):
        assert haversine(10, 20, 10, 20) == 0.0
        assert vincenty(10, 20, 10, 20) == 0.0

    def test_quarter_meridian(self):
        # Pole to equator is ~10,002 km.
        assert haversine(0, 0, 90, 0) == pytest.approx(10_007, rel=0.01)

    def test_known_pair_london_paris(self):
        d = haversine(51.5074, -0.1278, 48.8566, 2.3522)
        assert d == pytest.approx(344, rel=0.02)

    def test_vincenty_close_to_haversine(self):
        d_h = haversine(40.7, -74.0, 35.7, 139.7)  # NYC–Tokyo
        d_v = vincenty(40.7, -74.0, 35.7, 139.7)
        assert d_v == pytest.approx(d_h, rel=0.01)

    def test_antipodal_fallback(self):
        # Near-antipodal points: Vincenty falls back, stays finite.
        d = vincenty(0.0, 0.0, 0.5, 179.7)
        assert 19_000 < d < 20_100

    @given(
        st.floats(-80, 80), st.floats(-179, 179),
        st.floats(-80, 80), st.floats(-179, 179),
    )
    def test_haversine_symmetric_nonnegative(self, lat1, lon1, lat2, lon2):
        d = haversine(lat1, lon1, lat2, lon2)
        assert d >= 0.0
        assert d == pytest.approx(haversine(lat2, lon2, lat1, lon1))
        assert d <= math.pi * EARTH_RADIUS_KM + 1.0

    def test_distance_matrix_shape(self):
        pts = [(0, 0), (10, 10), (20, 20)]
        matrix = distance_matrix(pts)
        assert matrix.shape == (3, 3)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_distance_matrix_vincenty(self):
        pts = [(0, 0), (10, 10)]
        matrix = distance_matrix(pts, method="vincenty")
        assert matrix[0, 1] == pytest.approx(haversine(0, 0, 10, 10), rel=0.01)

    def test_distance_matrix_bad_method(self):
        with pytest.raises(ValueError):
            distance_matrix([(0, 0)], method="euclid")


class TestMDS:
    def test_recovers_planar_configuration(self):
        rng = np.random.default_rng(0)
        original = rng.uniform(0, 10, size=(12, 2))
        diffs = original[:, None, :] - original[None, :, :]
        matrix = np.sqrt((diffs**2).sum(axis=2))
        embedded = classical_mds(matrix, dimensions=2)
        # Distances must be preserved (up to rotation/reflection).
        rediffs = embedded[:, None, :] - embedded[None, :, :]
        rematrix = np.sqrt((rediffs**2).sum(axis=2))
        assert np.allclose(matrix, rematrix, atol=1e-6)

    def test_stress_low_for_planar(self):
        rng = np.random.default_rng(1)
        original = rng.uniform(0, 10, size=(10, 2))
        diffs = original[:, None, :] - original[None, :, :]
        matrix = np.sqrt((diffs**2).sum(axis=2))
        assert stress(matrix, classical_mds(matrix)) < 1e-6

    def test_geodesic_world_embedding_reasonable(self):
        pts = [(0, 0), (0, 90), (0, 180), (0, -90), (45, 45), (-45, -45)]
        matrix = distance_matrix(pts)
        assert stress(matrix, classical_mds(matrix)) < 0.5

    def test_mds_points_wrapper(self):
        matrix = distance_matrix([(0, 0), (10, 0), (0, 10)])
        embedded = mds_points(matrix)
        assert len(embedded) == 3
        assert all(isinstance(point, Point) for point in embedded)

    def test_non_square_rejected(self):
        with pytest.raises(InvalidGeometryError):
            classical_mds(np.zeros((2, 3)))

    def test_asymmetric_rejected(self):
        with pytest.raises(InvalidGeometryError):
            classical_mds(np.array([[0.0, 1.0], [2.0, 0.0]]))


class TestUniformGrid:
    def _grid(self):
        return UniformGrid(Rectangle(0, 0, 10, 10), cols=5, rows=2)

    def test_cell_of_interior(self):
        assert self._grid().cell_of(Point(1, 1)) == GridCell(0, 0)
        assert self._grid().cell_of(Point(9.5, 9.5)) == GridCell(4, 1)

    def test_max_edge_maps_to_last_cell(self):
        assert self._grid().cell_of(Point(10, 10)) == GridCell(4, 1)

    def test_outside_rejected(self):
        with pytest.raises(InvalidGeometryError):
            self._grid().cell_of(Point(11, 5))

    def test_cell_rectangle_roundtrip(self):
        grid = self._grid()
        cell = GridCell(2, 1)
        rect = grid.cell_rectangle(cell)
        assert grid.cell_of(rect.center) == cell

    def test_cell_center(self):
        assert self._grid().cell_center(GridCell(0, 0)) == Point(1.0, 2.5)

    def test_bad_cell(self):
        with pytest.raises(InvalidGeometryError):
            self._grid().cell_rectangle(GridCell(9, 9))

    def test_group_points(self):
        grid = self._grid()
        groups = grid.group_points([Point(1, 1), Point(1.5, 1), Point(9, 9)])
        assert len(groups[GridCell(0, 0)]) == 2
        assert len(groups[GridCell(4, 1)]) == 1

    def test_aggregate_streams(self):
        grid = self._grid()
        result = grid.aggregate_streams([Point(1, 1), Point(9, 9), Point(1.2, 1)])
        assert len(result) == 2
        cell, center, members = result[0]
        assert cell == GridCell(0, 0)
        assert sorted(members) == [0, 2]

    def test_degenerate_grid_rejected(self):
        with pytest.raises(InvalidGeometryError):
            UniformGrid(Rectangle(0, 0, 10, 10), cols=0, rows=1)


class TestSpatialIndex:
    def test_empty_rejected(self):
        with pytest.raises(EmptyInputError):
            SpatialIndex([])

    def test_rectangle_query_matches_scan(self):
        rng = np.random.default_rng(3)
        pts = [(i, Point(float(x), float(y))) for i, (x, y) in enumerate(rng.uniform(0, 100, size=(200, 2)))]
        index = SpatialIndex(pts)
        query = Rectangle(20, 20, 60, 70)
        expected = sorted(i for i, p in pts if query.contains_point(p))
        assert sorted(index.query_rectangle(query)) == expected
        assert index.count_in_rectangle(query) == len(expected)

    def test_nearest_matches_scan(self):
        rng = np.random.default_rng(4)
        pts = [(i, Point(float(x), float(y))) for i, (x, y) in enumerate(rng.uniform(0, 50, size=(120, 2)))]
        index = SpatialIndex(pts)
        for qx, qy in rng.uniform(-10, 60, size=(20, 2)):
            probe = Point(float(qx), float(qy))
            item, _, distance = index.nearest(probe)
            best = min(pts, key=lambda entry: probe.distance_to(entry[1]))
            assert distance == pytest.approx(probe.distance_to(best[1]))

    def test_len(self):
        index = SpatialIndex([("a", Point(0, 0)), ("b", Point(1, 1))])
        assert len(index) == 2

    def test_single_point(self):
        index = SpatialIndex([("only", Point(5, 5))])
        item, location, distance = index.nearest(Point(0, 0))
        assert item == "only"
        assert distance == pytest.approx(Point(0, 0).distance_to(Point(5, 5)))


class TestMortonWindows:
    """The quadtree pre/post-window decomposition behind the interval
    index: exact at ``coarse_level=0``, a superset (never a subset) at
    coarser levels, always sorted / disjoint / merged."""

    @staticmethod
    def cells_of(windows):
        covered = set()
        for lo, hi in windows:
            covered.update(range(lo, hi))
        return covered

    @staticmethod
    def exact_cells(col_lo, col_hi, row_lo, row_hi):
        cols, rows = np.meshgrid(
            np.arange(col_lo, col_hi + 1), np.arange(row_lo, row_hi + 1)
        )
        return set(
            interleave_codes(cols.ravel(), rows.ravel()).tolist()
        )

    @given(st.data())
    def test_exact_decomposition(self, data):
        levels = data.draw(st.integers(1, 5))
        side = 1 << levels
        col_lo = data.draw(st.integers(0, side - 1))
        col_hi = data.draw(st.integers(col_lo, side - 1))
        row_lo = data.draw(st.integers(0, side - 1))
        row_hi = data.draw(st.integers(row_lo, side - 1))
        windows = morton_windows(col_lo, col_hi, row_lo, row_hi, levels)
        assert self.cells_of(windows) == self.exact_cells(
            col_lo, col_hi, row_lo, row_hi
        )
        # Ascending, disjoint, and adjacent runs merged.
        for (lo_a, hi_a), (lo_b, _) in zip(windows, windows[1:]):
            assert lo_a < hi_a
            assert hi_a < lo_b

    @given(st.data())
    def test_coarse_levels_only_overcover(self, data):
        levels = data.draw(st.integers(2, 5))
        side = 1 << levels
        col_lo = data.draw(st.integers(0, side - 1))
        col_hi = data.draw(st.integers(col_lo, side - 1))
        row_lo = data.draw(st.integers(0, side - 1))
        row_hi = data.draw(st.integers(row_lo, side - 1))
        exact = morton_windows(col_lo, col_hi, row_lo, row_hi, levels)
        for coarse in range(1, levels + 1):
            coarser = morton_windows(
                col_lo, col_hi, row_lo, row_hi, levels, coarse_level=coarse
            )
            assert self.cells_of(coarser) >= self.cells_of(exact)
            assert len(coarser) <= max(1, len(exact))

    def test_full_grid_is_one_window(self):
        for levels in (1, 3, 6):
            side = 1 << levels
            assert morton_windows(
                0, side - 1, 0, side - 1, levels
            ) == [(0, side * side)]

    def test_disjoint_range_is_empty(self):
        assert morton_windows(8, 9, 8, 9, 3) == []  # outside the 8×8 grid


class TestIntervalSpatialIndex:
    """Differential oracle: interval containment answers must equal the
    hash-grid :class:`SpatialIndex` (and a linear scan) exactly,
    boundary points included."""

    @staticmethod
    def scan(pts, query):
        return sorted(i for i, p in pts if query.contains_point(p))

    def test_empty_rejected(self):
        with pytest.raises(EmptyInputError):
            IntervalSpatialIndex([])

    def test_rectangle_query_matches_hash_index(self):
        rng = np.random.default_rng(5)
        pts = [
            (i, Point(float(x), float(y)))
            for i, (x, y) in enumerate(rng.uniform(0, 100, size=(300, 2)))
        ]
        interval = IntervalSpatialIndex(pts)
        hashed = SpatialIndex(pts)
        for _ in range(25):
            x0, y0 = rng.uniform(-20, 110, size=2)
            w, h = rng.uniform(0, 80, size=2)
            query = Rectangle(x0, y0, x0 + w, y0 + h)
            expected = self.scan(pts, query)
            assert sorted(interval.query_rectangle(query)) == expected
            assert sorted(hashed.query_rectangle(query)) == expected
            assert interval.count_in_rectangle(query) == len(expected)

    def test_boundary_points_included(self):
        # Query edges sitting exactly on point coordinates: containment
        # is closed on all four sides, whatever cell the label math
        # puts the point in.
        pts = [
            (i, Point(float(x), float(y)))
            for i, (x, y) in enumerate(
                [(0, 0), (0, 10), (10, 0), (10, 10), (5, 5), (10, 5)]
            )
        ]
        index = IntervalSpatialIndex(pts)
        assert sorted(index.query_rectangle(Rectangle(0, 0, 10, 10))) == [
            0, 1, 2, 3, 4, 5,
        ]
        assert sorted(index.query_rectangle(Rectangle(10, 0, 10, 10))) == [
            2, 3, 5,
        ]
        assert sorted(index.query_rectangle(Rectangle(5, 5, 5, 5))) == [4]

    def test_degenerate_extents(self):
        # Identical points: zero-area extent, every cell computation
        # collapses to cell (0, 0).
        same = [(i, Point(3.0, 4.0)) for i in range(5)]
        index = IntervalSpatialIndex(same)
        assert sorted(index.query_rectangle(Rectangle(0, 0, 10, 10))) == list(
            range(5)
        )
        assert index.query_rectangle(Rectangle(5, 5, 6, 6)) == []
        # Collinear points: zero-height extent.
        line = [(i, Point(float(i), 2.0)) for i in range(8)]
        index = IntervalSpatialIndex(line)
        assert sorted(index.query_rectangle(Rectangle(2, 0, 5, 4))) == [
            2, 3, 4, 5,
        ]
        only = IntervalSpatialIndex([("solo", Point(1.0, 1.0))])
        assert len(only) == 1
        assert only.query_rectangle(Rectangle(0, 0, 2, 2)) == ["solo"]

    def test_far_queries_do_not_overflow(self):
        # Query coordinates far outside the extent clamp in the float
        # domain — no int overflow, exact results either way.
        pts = [(i, Point(float(i), float(i))) for i in range(10)]
        index = IntervalSpatialIndex(pts)
        assert index.query_rectangle(
            Rectangle(1e300, 1e300, 1.5e300, 1.5e300)
        ) == []
        assert sorted(
            index.query_rectangle(Rectangle(-1e300, -1e300, 1e300, 1e300))
        ) == list(range(10))

    @given(st.data())
    def test_random_points_match_scan(self, data):
        n = data.draw(st.integers(1, 60))
        coord = st.floats(-50, 50, allow_nan=False)
        raw = data.draw(
            st.lists(st.tuples(coord, coord), min_size=n, max_size=n)
        )
        pts = [(i, Point(x, y)) for i, (x, y) in enumerate(raw)]
        levels = data.draw(st.one_of(st.none(), st.integers(1, 8)))
        index = IntervalSpatialIndex(pts, levels=levels)
        x0 = data.draw(coord)
        y0 = data.draw(coord)
        query = Rectangle(
            x0,
            y0,
            x0 + data.draw(st.floats(0, 60)),
            y0 + data.draw(st.floats(0, 60)),
        )
        assert sorted(index.query_rectangle(query)) == self.scan(pts, query)
