"""Topix-style corpus walkthrough: the paper's Table-1 workflow.

Generates the 181-country, 48-week synthetic news corpus with the 18
Major Events of Table 9 injected, mines the top combinatorial and
regional pattern for a few representative queries, and compares their
spatial footprints — the global-vs-local contrast of Section 6.2.

Run with:  python examples/topix_events.py          (a few minutes)
           python examples/topix_events.py --small  (scaled, faster)
"""

from __future__ import annotations

import sys

from repro.core import STComb, STCombConfig, STLocal
from repro.datagen import CorpusSettings, generate_topix_corpus
from repro.spatial import mbr
from repro.streams import FrequencyTensor, tokenize


REPRESENTATIVE_QUERIES = [
    "Obama",        # tier 1 — global impact
    "swine",        # tier 1 — pandemic
    "gaza",         # tier 2 — regional conflict
    "piracy",       # tier 2 — Somali coast
    "Tsvangirai",   # tier 3 — local politics
    "Zelaya",       # tier 3 — local politics
]


def main() -> None:
    small = "--small" in sys.argv
    settings = CorpusSettings(background_rate=1.0 if small else 3.0)
    print("generating Topix-style corpus "
          f"({settings.n_countries} countries, {settings.timeline} weeks)...")
    corpus = generate_topix_corpus(settings)
    collection = corpus.collection
    print(f"  {collection.document_count} documents generated\n")

    tensor = FrequencyTensor(collection)
    locations = collection.locations()
    stcomb = STComb(config=STCombConfig(min_interval_score=0.2))
    stlocal = STLocal()

    header = f"{'query':<14} {'STLocal':>8} {'STComb':>8} {'MBR':>6}  timeframes"
    print(header)
    print("-" * len(header))
    for query in REPRESENTATIVE_QUERIES:
        term = tokenize(query)[0]
        comb = stcomb.top_pattern(tensor, term)
        local = stlocal.top_pattern(tensor, term, locations=locations)

        local_members = local.bursty_streams or local.streams
        box = mbr([locations[sid] for sid in comb.streams])
        in_mbr = sum(
            1 for point in locations.values() if box.contains_point(point)
        )
        print(
            f"{query:<14} {len(local_members):>8} {len(comb.streams):>8} "
            f"{in_mbr:>6}  STLocal {local.timeframe}, STComb {comb.timeframe}"
        )

    print(
        "\nReading the table: tier-1 queries light up most of the world "
        "under both\nminers; tier-3 queries stay local under STLocal while "
        "STComb's members\nscatter (their MBR covers much of the map) — "
        "the contrast of Table 1."
    )


if __name__ == "__main__":
    main()
