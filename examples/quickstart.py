"""Quickstart: build a tiny geostamped collection, mine both pattern
families, and search for bursty documents.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.core import STComb, STLocal
from repro.search import BurstySearchEngine
from repro.spatial import Point
from repro.streams import Document, SpatiotemporalCollection


def build_collection() -> SpatiotemporalCollection:
    """Eight city streams, 30 days, one regional 'flood' event."""
    rng = random.Random(7)
    collection = SpatiotemporalCollection(timeline=30)

    cities = {
        "amsterdam": Point(4.9, 52.4),
        "rotterdam": Point(4.5, 51.9),
        "antwerp": Point(4.4, 51.2),
        "brussels": Point(4.4, 50.8),
        "paris": Point(2.4, 48.9),
        "berlin": Point(13.4, 52.5),
        "madrid": Point(-3.7, 40.4),
        "rome": Point(12.5, 41.9),
    }
    for city, location in cities.items():
        collection.add_stream(city, location)

    doc_id = 0
    # Background chatter everywhere.
    for city in cities:
        for day in range(30):
            for _ in range(rng.randint(1, 3)):
                collection.add_document(
                    Document.from_text(
                        doc_id, city, day, "local news traffic weather sports"
                    )
                )
                doc_id += 1

    # A flood hits the Low Countries on days 12-16.
    for city in ("amsterdam", "rotterdam", "antwerp"):
        for day in range(12, 17):
            for _ in range(6):
                collection.add_document(
                    Document.from_text(
                        doc_id,
                        city,
                        day,
                        "flood warning rivers flood emergency dikes",
                        event_id="flood-2026",
                    )
                )
                doc_id += 1
    return collection


def main() -> None:
    collection = build_collection()
    print(f"collection: {len(collection)} streams, "
          f"{collection.document_count} documents\n")

    # --- Combinatorial patterns (STComb, Section 3) -------------------
    comb = STComb().top_pattern(collection, "flood")
    print("STComb top pattern:")
    print(f"  streams   : {sorted(comb.streams)}")
    print(f"  timeframe : {comb.timeframe}")
    print(f"  score     : {comb.score:.3f}\n")

    # --- Regional patterns (STLocal, Section 4) ------------------------
    local = STLocal().top_pattern(collection, "flood")
    print("STLocal top pattern (maximal spatiotemporal window):")
    print(f"  region    : {local.region}")
    print(f"  streams   : {sorted(local.streams)}")
    print(f"  timeframe : {local.timeframe}")
    print(f"  w-score   : {local.score:.3f}\n")

    # --- Bursty-document search (Section 5) ----------------------------
    patterns = STLocal().mine(collection, terms=["flood"])
    engine = BurstySearchEngine(collection, patterns)
    print("top-5 documents for query 'flood':")
    for hit in engine.search("flood", k=5):
        doc = hit.document
        print(
            f"  doc {doc.doc_id:<4} from {doc.stream_id:<10} "
            f"day {doc.timestamp:<3} score {hit.score:.2f}"
        )


if __name__ == "__main__":
    main()
