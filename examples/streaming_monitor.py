"""Streaming usage of STLocal: a live spatiotemporal burst monitor.

STLocal is an *online* algorithm (Algorithm 2): it consumes one
snapshot per timestamp and maintains the set of maximal spatiotemporal
windows incrementally.  This example feeds a tracker day by day,
printing alerts the moment a region turns bursty and a summary of the
maximal windows at the end — the workflow of the paper's trend-
identification application.

Run with:  python examples/streaming_monitor.py
"""

from __future__ import annotations

import random

from repro.core import STLocalConfig
from repro.core.stlocal import STLocalTermTracker
from repro.spatial import Point


def main() -> None:
    rng = random.Random(3)

    # A 6x6 grid of sensor-city streams.
    locations = {
        f"city-{col}{row}": Point(col * 10.0, row * 10.0)
        for col in range(6)
        for row in range(6)
    }
    tracker = STLocalTermTracker(locations, STLocalConfig(warmup=3))

    # Simulated term frequencies: light background chatter everywhere,
    # an outbreak in the north-west block on days 20-28, and an echo in
    # the south-east corner on days 24-26.
    def snapshot(day: int) -> dict:
        freq = {}
        for sid in locations:
            if rng.random() < 0.25:
                freq[sid] = float(rng.randint(1, 2))
        if 20 <= day <= 28:
            for sid in ("city-00", "city-10", "city-01", "city-11"):
                freq[sid] = freq.get(sid, 0.0) + rng.randint(6, 10)
        if 24 <= day <= 26:
            for sid in ("city-55", "city-45"):
                freq[sid] = freq.get(sid, 0.0) + rng.randint(4, 7)
        return freq

    print("streaming 40 daily snapshots...\n")
    for day in range(40):
        rectangles = tracker.process(snapshot(day))
        if rectangles:
            print(
                f"day {day:>2}: {rectangles} bursty rectangle(s), "
                f"{tracker.open_sequences} open region sequence(s)"
            )

    print("\nmaximal spatiotemporal windows found:")
    windows = sorted(tracker.windows(), key=lambda w: -w[3])[:5]
    for region, streams, timeframe, score in windows:
        bursty = tracker.bursty_members(streams, timeframe)
        print(
            f"  {region}  days {timeframe}  w-score {score:7.2f}  "
            f"{len(bursty or streams)} bursty stream(s)"
        )

    peak_open = max(tracker.open_history)
    worst_case = len(locations) * tracker.clock
    print(
        f"\nbookkeeping: open sequences peaked at {peak_open}, versus a "
        f"worst-case bound of {worst_case} (n new windows per day — "
        "the gap Figure 6 demonstrates)"
    )


if __name__ == "__main__":
    main()
