"""Pattern retrieval on artificial data: the Table-2 workflow.

Generates distGen and randGen datasets with injected ground-truth
patterns (Appendix B), retrieves them with STLocal, STComb and the
Base baseline, and reports JaccardSim / Start-Error / End-Error —
a miniature of the paper's Table 2.

Run with:  python examples/synthetic_retrieval.py
"""

from __future__ import annotations

from repro.core import BaseDetector, STComb, STLocal
from repro.datagen import GeneratorSettings, generate_dataset
from repro.eval import end_error, jaccard_similarity, start_error


def evaluate(mode: str) -> None:
    settings = GeneratorSettings(
        mode=mode,
        timeline=180,
        n_streams=40,
        n_terms=400,
        n_patterns=30,
        seed=13,
    )
    data = generate_dataset(settings)
    stlocal, stcomb, base = STLocal(), STComb(), BaseDetector()

    def stlocal_answer(term):
        pattern = stlocal.top_pattern(data, term, locations=data.locations)
        if pattern is None:
            return None
        return (pattern.bursty_streams or pattern.streams), pattern.timeframe

    def stcomb_answer(term):
        pattern = stcomb.top_pattern(data, term)
        return None if pattern is None else (pattern.streams, pattern.timeframe)

    def base_answer(term):
        pattern = base.top_pattern(data, term)
        return None if pattern is None else (pattern.streams, pattern.timeframe)

    print(f"--- {mode}Gen ({settings.n_patterns} injected patterns) ---")
    print(f"{'method':<10} {'JaccardSim':>10} {'Start-Err':>10} {'End-Err':>10}")
    for name, answer in (
        ("STLocal", stlocal_answer),
        ("STComb", stcomb_answer),
        ("Base", base_answer),
    ):
        jaccards, starts, ends = [], [], []
        for pattern in data.patterns:
            found = answer(pattern.term)
            if found is None:
                jaccards.append(0.0)
                starts.append(float(settings.timeline))
                ends.append(float(settings.timeline))
                continue
            streams, timeframe = found
            jaccards.append(jaccard_similarity(streams, pattern.streams))
            starts.append(start_error(timeframe, pattern.timeframe))
            ends.append(end_error(timeframe, pattern.timeframe))
        n = len(data.patterns)
        print(
            f"{name:<10} {sum(jaccards) / n:>10.2f} "
            f"{sum(starts) / n:>10.1f} {sum(ends) / n:>10.1f}"
        )
    print()


def main() -> None:
    evaluate("dist")
    evaluate("rand")
    print(
        "distGen patterns are spatially local (streams near a seed), so the\n"
        "region-aware STLocal shines there; randGen scatters streams\n"
        "arbitrarily, which suits the geography-blind STComb."
    )


if __name__ == "__main__":
    main()
