"""Live ingestion + serving: the ingest → invalidate → serve lifecycle.

The static stack answers queries over a finished collection; this
example runs the online counterpart (`repro.live`): documents are
ingested snapshot by snapshot while queries are served continuously,
and every answer reflects everything ingested so far.

Watch three mechanisms as the feed plays:

* the epoch-keyed LRU result cache — repeating a query inside one
  epoch is a cache hit, any ingest silently retires the entry;
* per-term invalidation — a query whose term saw no new documents is
  served from its existing posting list ("served without any work"
  below), while a term whose pattern set shifted rebuilds only its own
  posting list; pattern-stable terms take the cheap delta path.

At the end the live state is cross-checked against a cold batch
rebuild — the same differential oracle the test suite enforces.

Run with:  python examples/live_serving.py
"""

from __future__ import annotations

import random

from repro import (
    BatchMiner,
    BurstySearchEngine,
    Document,
    LiveCollection,
    LiveSearchEngine,
    Point,
    SpatiotemporalCollection,
)

TIMELINE = 36
VOCABULARY = ["earthquake", "transit", "market", "festival", "rain"]


def main() -> None:
    rng = random.Random(42)

    live = LiveCollection(TIMELINE)
    cities = {
        f"city-{col}{row}": Point(col * 12.0, row * 12.0)
        for col in range(5)
        for row in range(5)
    }
    for city, point in cities.items():
        live.add_stream(city, point)
    engine = LiveSearchEngine(live, cache_size=64, compaction_threshold=16)

    doc_id = 0

    def background(day: int) -> list:
        nonlocal doc_id
        docs = []
        for city in cities:
            if rng.random() < 0.35:
                text = " ".join(
                    rng.choice(VOCABULARY[1:]) for _ in range(rng.randint(1, 3))
                )
                docs.append(Document.from_text(doc_id, city, day, text))
                doc_id += 1
        return docs

    def outbreak(day: int) -> list:
        nonlocal doc_id
        docs = []
        for city in ("city-00", "city-01", "city-10", "city-11"):
            docs.append(
                Document.from_text(
                    doc_id, city, day, "earthquake earthquake aftershock"
                )
            )
            doc_id += 1
        return docs

    print("replaying 36 daily snapshots with queries every 6 days...\n")
    for day in range(TIMELINE):
        docs = background(day)
        if 14 <= day <= 20:
            docs.extend(outbreak(day))
        live.ingest_snapshot(day, docs)

        if day % 6 == 5:
            engine.search("festival", k=3)  # background term: delta path
            results = engine.search("earthquake", k=3)
            hit_check = engine.search("earthquake", k=3)  # same epoch → LRU hit
            assert hit_check == results
            top = (
                f"doc {results[0].document.doc_id} from "
                f"{results[0].document.stream_id} (score {results[0].score:.2f})"
                if results
                else "nothing bursty yet"
            )
            print(
                f"day {day:>2}: {live.document_count:>4} docs ingested | "
                f"'earthquake' → {len(results)} result(s); top: {top}"
            )

    stats = engine.stats
    print(
        f"\nserving stats: {stats.cache_hits} LRU hits / "
        f"{stats.cache_misses} misses, {stats.rebuilds} posting rebuilds, "
        f"{stats.delta_updates} delta updates, "
        f"{stats.served_current} terms served without any work, "
        f"{engine.index.compactions} compactions"
    )

    # ------------------------------------------------------------------
    # The differential oracle: live state == cold batch rebuild.
    # ------------------------------------------------------------------
    cold = SpatiotemporalCollection(TIMELINE)
    for city, point in cities.items():
        cold.add_stream(city, point)
    for document in live.collection.documents():
        cold.add_document(document)
    batch_engine = BurstySearchEngine(cold, BatchMiner().mine_regional(cold))

    for query in ("earthquake", "market rain", "festival"):
        lively = [
            (r.document.doc_id, r.score) for r in engine.search(query, k=10)
        ]
        coldly = [
            (r.document.doc_id, r.score)
            for r in batch_engine.search(query, k=10)
        ]
        status = "identical" if lively == coldly else "MISMATCH"
        print(f"differential check {query!r}: live vs cold rebuild ... {status}")
        assert lively == coldly

    print("\nlive serving state verified against the batch oracle.")


if __name__ == "__main__":
    main()
