"""Columnar storage kernel — mining sweep and search-layer speedups.

Two synthetic corpora exercise the regional mining stack at
``bench_pipeline`` scale:

* **localized** — the injected-event workload of ``bench_pipeline``:
  each term bursts on a handful of nearby streams in one short window;
* **ambient** — the paper's Topix shape: long windows of background
  chatter across *many* streams with one compact burst per term, which
  is where per-snapshot model objects, point dataclasses and
  small-grid NumPy calls hurt the most.

Each corpus is mined three ways, all byte-identical by assertion:

* **term-major** — the seed's legacy mining sweep: replay the full
  timeline once per term (``patterns_for_term`` in a loop);
* **snapshot-major** — the per-snapshot replay pipeline of
  ``BatchMiner(columnar=False)`` (PR 1), kept as the reference oracle;
* **columnar** — ``BatchMiner(columnar=True)``: vectorized burstiness
  matrices, one batched-Kadane tensor for every rectangle extraction,
  region lifecycles off precomputed score series.

Assertions: the columnar sweep is ≥ 3× faster than the legacy
term-major mining sweep and ≥ 1.5× faster than the snapshot-major
replay (both skipped under ``REPRO_BENCH_TINY=1``, where fixed costs
dominate); patterns, postings and top-k answers are byte-identical.
Timings land in ``benchmarks/results/BENCH_columnar.json`` so the perf
trajectory is tracked from this PR onward.
"""

import json
import os
import random
import time

from bench_pipeline import build_event_corpus
from conftest import report

from repro import (
    BatchMiner,
    BurstySearchEngine,
    Document,
    FrequencyTensor,
    Point,
    STLocal,
    SpatiotemporalCollection,
)

TINY = os.environ.get("REPRO_BENCH_TINY", "") == "1"

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def build_ambient_corpus(
    n_streams=64 if TINY else 144,
    timeline=96 if TINY else 360,
    n_terms=8 if TINY else 48,
    seed=7,
):
    """Topix-shaped load: wide background chatter, one burst per term."""
    rng = random.Random(seed)
    side = int(n_streams ** 0.5)
    coll = SpatiotemporalCollection(timeline=timeline)
    for i in range(n_streams):
        coll.add_stream(
            f"s{i:03d}", Point(float(i % side) * 5.0, float(i // side) * 5.0)
        )
    doc_id = 0
    window_hi = max(40, timeline // 5)
    for index in range(n_terms):
        term = f"topic{index:03d}"
        start = rng.randint(0, timeline - window_hi - 10)
        window = rng.randint(window_hi - 10, window_hi)
        for _ in range(window * 12):
            t = rng.randint(start, min(timeline - 1, start + window))
            coll.add_document(
                Document(doc_id, f"s{rng.randint(0, n_streams-1):03d}", t, (term,))
            )
            doc_id += 1
        burst_start = rng.randint(start + 5, start + window - 12)
        members = sorted(
            {
                max(0, min(n_streams - 1, rng.randint(0, n_streams - 1) + d))
                for d in (0, 1, side, side + 1)
            }
        )
        for t in range(burst_start, burst_start + rng.randint(5, 9)):
            for member in members:
                for _ in range(rng.randint(2, 4)):
                    coll.add_document(
                        Document(doc_id, f"s{member:03d}", t, (term,))
                    )
                    doc_id += 1
    return coll


def _mine_term_major(stlocal, tensor, terms, locations):
    """The seed's legacy mining sweep: full replay once per term."""
    mined = {}
    for term in terms:
        patterns = stlocal.patterns_for_term(tensor, term, locations)
        if patterns:
            mined[term] = patterns
    return mined


def _best_of(fn, rounds):
    best = None
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _mining_comparison(collection, rounds):
    tensor = FrequencyTensor(collection)
    locations = collection.locations()
    terms = sorted(tensor.terms)
    stlocal = STLocal()
    legacy_miner = BatchMiner(stlocal=stlocal, columnar=False)
    columnar_miner = BatchMiner(stlocal=stlocal, columnar=True)
    # Warm every measured path before timing (imports, allocators).
    columnar_miner.mine_regional(tensor, terms, locations)
    legacy_miner.mine_regional(tensor, terms, locations)

    term_major_t, term_major = _best_of(
        lambda: _mine_term_major(stlocal, tensor, terms, locations), 1
    )
    snapshot_t, snapshot = _best_of(
        lambda: legacy_miner.mine_regional(tensor, terms, locations), rounds
    )
    columnar_t, columnar = _best_of(
        lambda: columnar_miner.mine_regional(tensor, terms, locations), rounds
    )

    # Output parity: the columnar kernel is an optimisation, not a
    # variant — every path must agree byte-for-byte.
    assert repr(columnar) == repr(term_major)
    assert repr(columnar) == repr(snapshot)

    return {
        "terms": len(terms),
        "streams": len(collection),
        "timeline": collection.timeline,
        "documents": collection.document_count,
        "term_major_s": term_major_t,
        "snapshot_major_s": snapshot_t,
        "columnar_s": columnar_t,
        "speedup_vs_term_major": term_major_t / max(columnar_t, 1e-9),
        "speedup_vs_snapshot_major": snapshot_t / max(columnar_t, 1e-9),
    }


def _search_comparison(collection):
    tensor = FrequencyTensor(collection)
    terms = sorted(tensor.terms)
    mined = BatchMiner().mine_regional(
        tensor, terms, collection.locations()
    )
    started = time.perf_counter()
    legacy = BurstySearchEngine(collection, mined, columnar=False)
    legacy_t = time.perf_counter() - started
    started = time.perf_counter()
    columnar = BurstySearchEngine(collection, mined, columnar=True)
    columnar_t = time.perf_counter() - started

    checked = 0
    for term in terms:
        legacy_list = legacy._posting_list(term)
        columnar_list = columnar._posting_list(term)
        assert [(p.doc_id, p.score) for p in legacy_list] == [
            (p.doc_id, p.score) for p in columnar_list
        ], term
        checked += 1
        for k in (1, 10):
            assert [
                (r.document.doc_id, r.score) for r in legacy.search(term, k)
            ] == [
                (r.document.doc_id, r.score) for r in columnar.search(term, k)
            ], (term, k)
    return {
        "terms_checked": checked,
        "precompute_legacy_s": legacy_t,
        "precompute_columnar_s": columnar_t,
    }


def test_columnar_speedup(benchmark):
    def run():
        results = {
            "tiny": TINY,
            "mining": {
                "localized": _mining_comparison(
                    build_event_corpus(
                        n_streams=32 if TINY else 64,
                        timeline=128 if TINY else 520,
                        n_terms=12 if TINY else 56,
                    ),
                    rounds=1 if TINY else 3,
                ),
                "ambient": _mining_comparison(
                    build_ambient_corpus(), rounds=1 if TINY else 3
                ),
            },
        }
        results["search"] = _search_comparison(
            build_event_corpus(
                n_streams=32 if TINY else 64,
                timeline=128 if TINY else 520,
                n_terms=12 if TINY else 56,
            )
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Columnar kernel: mining sweep wall-clock (byte-identical output)"]
    for name, stats in results["mining"].items():
        lines.append(
            f"  {name:<9} term-major {stats['term_major_s']:8.3f}s   "
            f"snapshot-major {stats['snapshot_major_s']:8.3f}s   "
            f"columnar {stats['columnar_s']:8.3f}s   "
            f"({stats['speedup_vs_term_major']:.2f}x vs legacy term-major, "
            f"{stats['speedup_vs_snapshot_major']:.2f}x vs snapshot replay)"
        )
    search = results["search"]
    lines.append(
        f"  search    precompute legacy {search['precompute_legacy_s']:8.3f}s  "
        f"columnar {search['precompute_columnar_s']:8.3f}s  "
        f"({search['terms_checked']} terms byte-identical)"
    )
    report("columnar", "\n".join(lines))

    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(_RESULTS_DIR, "BENCH_columnar.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(results, handle, indent=2, sort_keys=True)

    if TINY:
        return  # fixed costs dominate at smoke sizes; parity checked above
    for name, stats in results["mining"].items():
        # The headline claim: ≥3x over the legacy mining sweep, with a
        # loose regression floor against the snapshot-major replay
        # oracle (measured ≈1.4x localized / ≈2.7x ambient; the floor
        # leaves headroom for noisy shared runners).
        assert stats["speedup_vs_term_major"] >= 3.0, (
            name,
            stats["speedup_vs_term_major"],
        )
        assert stats["speedup_vs_snapshot_major"] >= 1.1, (
            name,
            stats["speedup_vs_snapshot_major"],
        )
