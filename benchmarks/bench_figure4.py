"""Figure 4 — Timeframe length of the top pattern per query.

Shape checks: timeframes are bounded by the 48-week timeline, STLocal
windows track the injected events' spans, and (as the paper observes)
STLocal's timeframes run at least as long as STComb's on average —
events "remain in the local spotlight even after the event has faded in
locations further from the source".
"""

from conftest import report

from repro.eval import exp_figure4


def test_figure4(benchmark, lab):
    result = benchmark.pedantic(exp_figure4, args=(lab,), rounds=1, iterations=1)
    report("figure4", result.render())

    for _, _, local_len, comb_len in result.rows:
        assert 0 <= local_len <= lab.collection.timeline
        assert 0 <= comb_len <= lab.collection.timeline

    avg_local = sum(row[2] for row in result.rows) / len(result.rows)
    avg_comb = sum(row[3] for row in result.rows) / len(result.rows)
    assert avg_local >= avg_comb
    # At least the long-running tier-1 stories span multi-week windows.
    assert max(row[2] for row in result.rows) >= 5
