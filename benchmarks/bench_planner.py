"""Calibrated planner under a Zipfian query workload.

Real query logs are heavily skewed: a handful of term combinations
account for most of the traffic (the motivating observation behind the
planner's hot-combination miner).  This bench synthesises that shape —
a pool of candidate term sets sampled with Zipfian weights
(``weight ∝ 1/rank^s``), so the top few combinations dominate a long
tail of rare ones — and serves the same query stream two ways over
identical posting columns:

* **plain** — ``topk(..., "auto")`` with no planner: every repeat of a
  hot combination re-executes the full strategy from scratch;
* **planned** — a :class:`~repro.search.CalibratedPlanner` attached:
  once a combination's support crosses ``hot_support`` the planner
  materialises the full merged survivor ranking once and serves every
  later repeat (any ``k``) as a prefix slice with zero sorted accesses.

Byte-identity is asserted per query: both modes must return exactly the
reference ranking (ids, float scores, tiebreak order) for that term
set, whether served by a strategy execution or the merged cache — the
planner is a pure routing/caching layer and must never change results.

The JSON report (``benchmarks/results/BENCH_planner.json``) records the
wall-clock of both modes (min over ``ROUNDS``), the merged-cache
hit/build counters, and the mined hot combinations.  The speedup gate
(planned ≥ 1.3× plain) is skipped under ``REPRO_BENCH_TINY=1``, where
per-query costs are too small for caching to matter; parity and the
cache-behaviour assertions always run.
"""

import json
import os
import time

import numpy as np

from conftest import report

from repro.columnar.postings import PostingArray
from repro.search import CalibratedPlanner, threshold_topk, topk

TINY = os.environ.get("REPRO_BENCH_TINY", "") == "1"

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

LIST_LEN = 1000 if TINY else 20000
N_TERMS = 12
N_COMBOS = 30
N_QUERIES = 120 if TINY else 500
ZIPF_S = 1.2
HOT_SUPPORT = 8
ROUNDS = 1 if TINY else 3
SPEEDUP_GATE = 1.3


def build_workload(seed=29):
    """Posting columns plus a Zipfian stream of (terms, k) queries."""
    rng = np.random.default_rng(seed)
    universe = LIST_LEN * 2
    columns = {}
    for index in range(N_TERMS):
        ids = np.sort(rng.choice(universe, size=LIST_LEN, replace=False))
        columns[f"t{index}"] = (ids.tolist(), rng.random(LIST_LEN))
    combos = []
    while len(combos) < N_COMBOS:
        size = int(rng.integers(2, 4))
        terms = tuple(
            sorted(
                f"t{i}"
                for i in rng.choice(N_TERMS, size=size, replace=False)
            )
        )
        if terms not in combos:
            combos.append(terms)
    weights = 1.0 / np.arange(1, N_COMBOS + 1) ** ZIPF_S
    weights /= weights.sum()
    draws = rng.choice(N_COMBOS, size=N_QUERIES, p=weights)
    ks = rng.integers(5, 16, size=N_QUERIES)
    queries = [(combos[c], int(k)) for c, k in zip(draws, ks)]
    return columns, queries


def fresh_lists(columns):
    return {
        term: PostingArray(ids, scores)
        for term, (ids, scores) in columns.items()
    }


def run_plain(columns, queries):
    pool = fresh_lists(columns)
    started = time.perf_counter()
    rankings = [
        [
            (r.doc_id, r.score)
            for r in topk([pool[term] for term in terms], k)[0]
        ]
        for terms, k in queries
    ]
    return time.perf_counter() - started, rankings


def run_planned(columns, queries):
    pool = fresh_lists(columns)
    planner = CalibratedPlanner(hot_support=HOT_SUPPORT, max_merged=N_COMBOS)
    token = ("bench", 0)
    started = time.perf_counter()
    rankings = []
    sources = []
    for terms, k in queries:
        results, stats = topk(
            [pool[term] for term in terms],
            k,
            planner=planner,
            terms=terms,
            token=token,
        )
        rankings.append([(r.doc_id, r.score) for r in results])
        sources.append(stats.source)
    return time.perf_counter() - started, rankings, planner, sources


def test_planner_zipfian_workload(benchmark):
    columns, queries = build_workload()

    def run():
        # Reference rankings, computed once per distinct (terms, k).
        oracle_pool = fresh_lists(columns)
        oracle = {}
        for terms, k in queries:
            if (terms, k) not in oracle:
                results, _ = threshold_topk(
                    [oracle_pool[term] for term in terms], k
                )
                oracle[(terms, k)] = [(r.doc_id, r.score) for r in results]

        best_plain = best_planned = None
        planner = sources = None
        for _ in range(ROUNDS):
            elapsed, rankings = run_plain(columns, queries)
            for (terms, k), ranking in zip(queries, rankings):
                assert repr(ranking) == repr(oracle[(terms, k)])
            if best_plain is None or elapsed < best_plain:
                best_plain = elapsed
            elapsed, rankings, round_planner, round_sources = run_planned(
                columns, queries
            )
            for (terms, k), ranking in zip(queries, rankings):
                assert repr(ranking) == repr(oracle[(terms, k)])
            if best_planned is None or elapsed < best_planned:
                best_planned = elapsed
                planner, sources = round_planner, round_sources

        stats = planner.stats()
        merged_served = sum(1 for source in sources if source == "merged")
        return {
            "tiny": TINY,
            "list_len": LIST_LEN,
            "queries": N_QUERIES,
            "distinct_combinations": N_COMBOS,
            "zipf_s": ZIPF_S,
            "hot_support": HOT_SUPPORT,
            "timings_s": {"plain": best_plain, "planned": best_planned},
            "speedup": best_plain / max(best_planned, 1e-9),
            "merged_served": merged_served,
            "merged_hits": stats["merged_hits"],
            "merged_builds": stats["merged_builds"],
            "hot_combinations": [
                {"terms": list(terms), "support": support}
                for terms, support in planner.hot_combinations(5)
            ],
            "identical": True,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "Calibrated planner: Zipfian workload, hot-combination serving "
        "(byte-identical rankings)",
        f"  {results['queries']} queries over "
        f"{results['distinct_combinations']} combinations "
        f"({results['list_len']}-posting lists, zipf s={results['zipf_s']})",
        f"  plain auto     {results['timings_s']['plain']:8.3f}s",
        f"  with planner   {results['timings_s']['planned']:8.3f}s "
        f"({results['speedup']:.2f}x)",
        f"  merged cache: {results['merged_served']} queries served, "
        f"{results['merged_builds']} rankings materialised",
    ]
    report("planner", "\n".join(lines))

    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(_RESULTS_DIR, "BENCH_planner.json"),
        "w",
        encoding="utf-8",
    ) as handle:
        json.dump(results, handle, indent=2, sort_keys=True)

    # The skew must actually produce hot combinations, and repeats of
    # them must be served from the merged cache.
    assert results["merged_builds"] >= 1
    assert results["merged_served"] > results["merged_builds"]
    assert results["hot_combinations"][0]["support"] > HOT_SUPPORT
    if TINY:
        return  # caching can't win at smoke sizes; parity checked above
    assert results["speedup"] >= SPEEDUP_GATE, results["speedup"]
