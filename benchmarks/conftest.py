"""Shared fixtures for the benchmark harness.

One Topix-style laboratory (corpus + tensor + pattern caches) is built
per session and shared by every corpus-backed benchmark, exactly as the
paper evaluates one dataset across Tables 1/3 and Figures 4–7.

Scale note: the default corpus uses the full 181 countries and 48 weeks
but a reduced background document rate, keeping the whole benchmark
suite laptop-sized.  Set ``REPRO_FULL=1`` in the environment to run the
paper-sized configuration.
"""



import os

import pytest

from repro.datagen import CorpusSettings
from repro.eval import TopixLab


def is_full_run() -> bool:
    return os.environ.get("REPRO_FULL", "") == "1"


@pytest.fixture(scope="session")
def lab() -> TopixLab:
    if is_full_run():
        settings = CorpusSettings(background_rate=5.0, seed=0)
    else:
        settings = CorpusSettings(background_rate=2.0, seed=0)
    return TopixLab(settings)


_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def report(name: str, text: str) -> None:
    """Print a rendered result and persist it under benchmarks/results/.

    pytest captures stdout of passing tests, so the persisted copy is
    what survives a plain ``pytest benchmarks/ --benchmark-only`` run.
    """
    print()
    print(text)
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def persist_summary(name: str, payload) -> None:
    """Write a ``BENCH_*.json`` summary to results/ *and* the repo root.

    The results/ copy feeds the CI artifact upload; the repo-root copy
    is committed, so the perf trajectory is tracked in-tree across PRs
    instead of living only in expiring CI artifacts.
    """
    import json

    os.makedirs(_RESULTS_DIR, exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    for directory in (_RESULTS_DIR, _REPO_ROOT):
        with open(
            os.path.join(directory, f"BENCH_{name}.json"),
            "w",
            encoding="utf-8",
        ) as handle:
            handle.write(text)
