"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Burst-detector pluggability: STComb with the Lappas (default) vs the
   Kleinberg detector on the same synthetic data.
2. Region identity in STLocal: stream-set keying (default) vs geometry
   keying.
3. Expected-frequency baselines: running mean (default) vs moving
   average vs EWMA on STLocal's retrieval quality.
4. distGen locality reading: exponential decay (ours) vs the literal
   "proportional to distance" sampler.
"""

import pytest

from repro.core import STComb, STLocal, STLocalConfig
from repro.datagen import GeneratorSettings, generate_dataset
from repro.eval import jaccard_similarity
from repro.temporal import (
    EWMABaseline,
    KleinbergBurstDetector,
    MovingAverageBaseline,
    RunningMeanBaseline,
)


@pytest.fixture(scope="module")
def data():
    return generate_dataset(
        GeneratorSettings(
            mode="dist", timeline=120, n_streams=40, n_terms=300,
            n_patterns=40, seed=21,
        )
    )


def _avg_jaccard_stcomb(data, detector=None):
    miner = STComb(detector=detector) if detector else STComb()
    scores = []
    for pattern in data.patterns:
        found = miner.top_pattern(data, pattern.term)
        scores.append(
            0.0 if found is None else jaccard_similarity(found.streams, pattern.streams)
        )
    return sum(scores) / len(scores)


def _avg_jaccard_stlocal(data, config):
    miner = STLocal(config)
    scores = []
    for pattern in data.patterns:
        found = miner.top_pattern(data, pattern.term, locations=data.locations)
        if found is None:
            scores.append(0.0)
            continue
        members = found.bursty_streams or found.streams
        scores.append(jaccard_similarity(members, pattern.streams))
    return sum(scores) / len(scores)


def test_ablation_detectors(benchmark, data):
    """Lappas vs Kleinberg as STComb's temporal substrate."""

    def run():
        return (
            _avg_jaccard_stcomb(data),
            _avg_jaccard_stcomb(
                data, KleinbergBurstDetector(scaling=2.5, gamma=0.5)
            ),
        )

    lappas, kleinberg = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nSTComb JaccardSim — Lappas: {lappas:.3f}  Kleinberg: {kleinberg:.3f}")
    # Both detectors recover the injected patterns to a useful degree.
    assert lappas > 0.3
    assert kleinberg > 0.15


def test_ablation_region_key(benchmark, data):
    """Stream-set vs geometry keying of tracked regions."""

    def run():
        return (
            _avg_jaccard_stlocal(data, STLocalConfig(key_by_geometry=False)),
            _avg_jaccard_stlocal(data, STLocalConfig(key_by_geometry=True)),
        )

    by_streams, by_geometry = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nSTLocal JaccardSim — stream-set key: {by_streams:.3f}  "
        f"geometry key: {by_geometry:.3f}"
    )
    assert by_streams > 0.3
    assert by_geometry > 0.2


def test_ablation_baselines(benchmark, data):
    """Expected-frequency model families (Section 4's options)."""

    def run():
        results = {}
        for name, factory in (
            ("running-mean", RunningMeanBaseline),
            ("moving-average", lambda: MovingAverageBaseline(window=8)),
            ("ewma", lambda: EWMABaseline(alpha=0.3)),
        ):
            results[name] = _avg_jaccard_stlocal(
                data, STLocalConfig(baseline_factory=factory)
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nSTLocal JaccardSim by baseline:")
    for name, value in results.items():
        print(f"  {name:>14}: {value:.3f}")
    for value in results.values():
        assert value > 0.2


def test_ablation_distgen_literal(benchmark):
    """Locality reading of the distGen appendix sentence."""

    def spread(mode):
        dataset = generate_dataset(
            GeneratorSettings(
                mode=mode, timeline=60, n_streams=40, n_terms=100,
                n_patterns=25, seed=5,
            )
        )
        totals = []
        for pattern in dataset.patterns:
            pts = [dataset.locations[sid] for sid in pattern.streams]
            pair_total, pairs = 0.0, 0
            for i, a in enumerate(pts):
                for b in pts[i + 1 :]:
                    pair_total += a.distance_to(b)
                    pairs += 1
            if pairs:
                totals.append(pair_total / pairs)
        return sum(totals) / len(totals)

    def run():
        return spread("dist"), spread("dist-literal")

    decay, literal = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nmean pairwise member distance — exp-decay: {decay:.1f}  "
        f"literal proportional-to-distance: {literal:.1f}"
    )
    # The literal reading destroys spatial locality.
    assert decay < literal
