"""Figure 5 — Distribution of bursty rectangles per term per timestamp.

The paper reports that for 92 % of terms the average number of bursty
rectangles per snapshot lies in [0, 1) — far below the worst-case n.
Shape check: a clear majority of sampled terms land in the first
bucket.
"""

from conftest import report

from repro.eval import exp_figure5


def test_figure5(benchmark, lab):
    result = benchmark.pedantic(
        exp_figure5, args=(lab,), kwargs={"sample": 60}, rounds=1, iterations=1
    )
    report("figure5", result.render())

    assert result.fraction_below_one() >= 0.5
    total = sum(fraction for _, fraction in result.buckets)
    assert abs(total - 1.0) < 1e-9
