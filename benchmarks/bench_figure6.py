"""Figure 6 — Open spatiotemporal windows per term vs the n·i bound.

The paper's measured count peaks around 10 open windows per term while
the worst-case bound grows as 181·i.  Shape checks: the measured curve
stays orders of magnitude below the bound and within the same small
regime the paper reports.
"""

from conftest import report

from repro.eval import exp_figure6


def test_figure6(benchmark, lab):
    result = benchmark.pedantic(
        exp_figure6, args=(lab,), kwargs={"sample": 60}, rounds=1, iterations=1
    )
    report("figure6", result.render())

    # Orders of magnitude below the worst case at the end of the stream.
    assert result.open_windows[-1] < result.upper_bound[-1] / 50
    # The per-term average stays in the paper's small regime.
    assert result.peak() < 50
    assert len(result.open_windows) == lab.collection.timeline
