"""Figure 9 — Weibull pdf event-shape curves.

Regenerates the pdf series for the (k, c) settings of the appendix.
Shape checks: k=1 is monotone decreasing (sharp-onset events), k>1
curves rise to an interior peak (slow build-ups).
"""

from conftest import report

from repro.eval import exp_figure9


def test_figure9(benchmark):
    result = benchmark.pedantic(exp_figure9, rounds=1, iterations=1)
    report("figure9", result.render())

    curves = dict(result.curves)
    exponential_like = curves["k=1.0,c=1.0"]
    assert all(a >= b for a, b in zip(exponential_like, exponential_like[1:]))

    humped = curves["k=5.0,c=3.0"]
    peak = humped.index(max(humped))
    assert 0 < peak < len(humped) - 1

    for _, values in result.curves:
        assert all(v >= 0.0 for v in values)
