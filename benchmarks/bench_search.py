"""Vectorized top-k serving kernel — strategy wall-clock comparison.

A synthetic multi-term query workload runs over columnar
:class:`~repro.columnar.postings.PostingArray` postings in three
regimes that span the serving envelope:

* **ambient** — independent uniform scores per list: the reference TA
  terminates after a moderate descent;
* **anti** — anti-correlated lists (every document is strong in one
  term, weak in the others): the threshold decays slowly and TA digs
  deep;
* **selective** — conjunctive queries whose intersection is smaller
  than ``k``: the k-th aggregate can never beat the threshold, so TA
  degrades to full exhaustion of every list — the seed serving path's
  worst case.

Each execution mode (reference ``ta``, ``blockmax``, ``scan``,
planner-selected ``auto``, and the batched ``topk_many``) runs the
whole workload against its own freshly-built posting arrays, so every
mode pays its own materialisation once and amortises it across the
queries — exactly the cache behaviour of the serving engines, for the
legacy path (lazy random-access dicts) and the kernel (column views)
alike.

Assertions: the planner-selected strategy is ≥ 3× faster than the
reference round-robin TA over the multi-term workload (skipped under
``REPRO_BENCH_TINY=1``, where fixed costs dominate), and every mode's
rankings — document ids, floating-point scores, tiebreak order — are
byte-identical to the reference TA *and* to the exhaustive oracle.
Timings land in ``benchmarks/results/BENCH_search.json``.

Regret methodology
------------------
The second phase measures how close calibrated ``auto`` gets to the
per-query best strategy.  A :class:`~repro.search.CalibratedPlanner`
is first *calibrated*: every query runs once under each candidate
strategy (``blockmax`` and ``scan``) with the planner attached, so the
planner observes a timed sample per (term set, strategy) — exactly the
data an explicit ``--compare`` pass produces in the CLI — and the cost
model is then fitted from that log.  The measurement pass times, per
query, each explicit strategy and calibrated ``auto`` (planner
attached, hot-combination caching disabled so strategy selection is
what's measured), taking the minimum over ``REGRET_ROUNDS`` runs to
suppress scheduler noise.  Per-query **regret** is
``t_auto / min(t_blockmax, t_scan)`` — 1.0 means auto matched the
per-query winner; the observe/log overhead of the planner is charged
to auto, so the metric reflects real serving cost.  The median over
the workload gates at ≤ 1.10 (skipped under ``REPRO_BENCH_TINY=1``,
where per-query times are microseconds and fixed overheads dominate);
per-query values land in the ``regret`` block of the JSON report.
"""

import os
import time

import numpy as np

from conftest import persist_summary, report

from repro.columnar.postings import PostingArray
from repro.search import (
    CalibratedPlanner,
    exhaustive_topk,
    threshold_topk,
    topk,
    topk_many,
)

TINY = os.environ.get("REPRO_BENCH_TINY", "") == "1"


LIST_LEN = 2000 if TINY else 40000
ROUNDS = 1 if TINY else 2
REGRET_ROUNDS = 1 if TINY else 3
REGRET_GATE = 1.10


def build_workload(seed=17, list_len=LIST_LEN):
    """Term → raw (ids, scores) columns plus the query mix.

    Returns ``(columns, queries)`` where ``columns`` maps term names to
    ``(doc_ids, scores)`` and each query is ``(terms, k)``.
    """
    rng = np.random.default_rng(seed)
    universe = list_len * 2
    columns = {}

    def subset(size):
        return np.sort(rng.choice(universe, size=size, replace=False))

    # Ambient regime: independent uniform scores.
    for index in range(4):
        ids = subset(list_len)
        columns[f"amb{index}"] = (ids.tolist(), rng.random(len(ids)))
    # Anti-correlated regime: documents specialise in one term.
    for index in range(4):
        ids = subset(list_len)
        base = rng.random(len(ids))
        strong = (ids % 4) == index
        columns[f"anti{index}"] = (
            ids.tolist(),
            np.where(strong, 0.5 + 0.5 * base, 0.25 * base),
        )
    # Selective regime: pairs sharing only a handful of documents, so
    # conjunctive top-k exhausts the reference TA completely.
    shared = rng.choice(universe, size=6, replace=False)
    lo = np.arange(universe, universe + list_len - 6)
    hi = np.arange(universe + list_len, universe + 2 * list_len - 6)
    for name, extra in (("sel0", lo), ("sel1", hi)):
        ids = np.sort(np.concatenate((shared, extra)))
        columns[name] = (ids.tolist(), rng.random(len(ids)))

    queries = [
        (("amb0", "amb1", "amb2"), 10),
        (("amb1", "amb2", "amb3"), 10),
        (("amb0", "amb2"), 10),
        (("amb0", "amb1", "amb2", "amb3"), 10),
        (("anti0", "anti1", "anti2"), 10),
        (("anti1", "anti2", "anti3"), 10),
        (("anti0", "anti1", "anti2", "anti3"), 10),
        (("anti0", "anti3"), 10),
        (("sel0", "sel1"), 10),
        (("sel0", "sel1", "amb0"), 10),
        (("amb0", "anti0"), 10),
        (("amb3", "anti2", "sel0"), 10),
        # Large-k slice: the planner should flip to the full scan.
        (("amb0", "amb1"), max(4, list_len // 2)),
        (("anti0", "anti1"), max(4, list_len // 2)),
    ]
    return columns, queries


def fresh_lists(columns):
    """New PostingArray objects: per-mode caches start cold."""
    return {
        term: PostingArray(ids, scores)
        for term, (ids, scores) in columns.items()
    }


def run_mode(columns, queries, mode):
    """Execute the workload in one mode; returns (seconds, rankings)."""
    pool = fresh_lists(columns)
    started = time.perf_counter()
    if mode == "batched":
        # topk_many shares one k per call: batch the workload per k.
        rankings = [None] * len(queries)
        by_k = {}
        for index, (_, k) in enumerate(queries):
            by_k.setdefault(k, []).append(index)
        for k, indices in by_k.items():
            outcomes = topk_many(
                [
                    [pool[term] for term in queries[index][0]]
                    for index in indices
                ],
                k,
            )
            for index, (results, _) in zip(indices, outcomes):
                rankings[index] = [(r.doc_id, r.score) for r in results]
        elapsed = time.perf_counter() - started
        return elapsed, rankings
    rankings = []
    plans = []
    for terms, k in queries:
        lists = [pool[term] for term in terms]
        if mode == "ta":
            results, _ = threshold_topk(lists, k)
        else:
            results, stats = topk(lists, k, mode)
            plans.append(stats.strategy)
        rankings.append([(r.doc_id, r.score) for r in results])
    elapsed = time.perf_counter() - started
    return (elapsed, rankings) if mode == "ta" else (elapsed, rankings, plans)


def measure_regret(columns, queries):
    """Calibrate a planner on the workload, then measure per-query
    regret of calibrated ``auto`` against the best explicit strategy.

    See the module docstring ("Regret methodology") for the protocol.
    ``hot_support=0`` disables hot-combination materialisation so the
    phase measures strategy *selection*, not cached serving.
    """
    pool = fresh_lists(columns)
    planner = CalibratedPlanner(hot_support=0)
    token = ("bench", 0)
    # Calibration pass: one timed observation per (query, candidate) —
    # explicit-strategy runs with the planner attached are observed.
    for terms, k in queries:
        lists = [pool[term] for term in terms]
        for strategy in ("blockmax", "scan"):
            topk(lists, k, strategy, planner=planner, terms=terms, token=token)
    planner.fit()
    per_query = {}
    choices = {}
    for terms, k in queries:
        lists = [pool[term] for term in terms]
        times = {}
        for strategy in ("blockmax", "scan"):
            best = None
            for _ in range(REGRET_ROUNDS):
                started = time.perf_counter()
                topk(lists, k, strategy)
                elapsed = time.perf_counter() - started
                if best is None or elapsed < best:
                    best = elapsed
            times[strategy] = best
        best_auto = None
        picked = None
        for _ in range(REGRET_ROUNDS):
            started = time.perf_counter()
            _, stats = topk(
                lists, k, planner=planner, terms=terms, token=token
            )
            elapsed = time.perf_counter() - started
            if best_auto is None or elapsed < best_auto:
                best_auto = elapsed
                picked = (stats.strategy, stats.source)
        name = "+".join(terms) + f"@k={k}"
        per_query[name] = best_auto / max(min(times.values()), 1e-9)
        choices[name] = {
            "chosen": picked[0],
            "via": picked[1],
            "best": min(times, key=times.get),
        }
    ordered = sorted(per_query.values())
    return {
        "per_query": per_query,
        "choices": choices,
        "median": ordered[len(ordered) // 2],
        "max": ordered[-1],
        "fitted": planner.model.fitted,
        "gate": REGRET_GATE,
    }


def test_search_kernel_speedup(benchmark):
    columns, queries = build_workload()

    def run():
        results = {"tiny": TINY, "list_len": LIST_LEN, "queries": len(queries)}
        timings = {}
        rankings = {}
        # Reference + oracle (untimed): exhaustive over a fresh pool.
        oracle_pool = fresh_lists(columns)
        oracle = [
            [
                (r.doc_id, r.score)
                for r in exhaustive_topk(
                    [oracle_pool[term] for term in terms], k
                )
            ]
            for terms, k in queries
        ]
        plans = None
        for mode in ("ta", "blockmax", "scan", "auto", "batched"):
            best = None
            outcome = None
            for _ in range(ROUNDS):
                outcome = run_mode(columns, queries, mode)
                if best is None or outcome[0] < best:
                    best = outcome[0]
            timings[mode] = best
            rankings[mode] = outcome[1]
            if mode == "auto":
                plans = outcome[2]
        # Byte-identical rankings: ids, float scores and tiebreak order
        # must match the reference TA and the exhaustive oracle exactly.
        for mode in ("blockmax", "scan", "auto", "batched"):
            assert repr(rankings[mode]) == repr(rankings["ta"]), mode
        assert repr(rankings["ta"]) == repr(oracle)
        results["timings_s"] = timings
        results["speedup_vs_ta"] = {
            mode: timings["ta"] / max(timings[mode], 1e-9)
            for mode in ("blockmax", "scan", "auto", "batched")
        }
        results["planner_choices"] = dict(
            zip(["+".join(terms) + f"@k={k}" for terms, k in queries], plans)
        )
        results["identical"] = True
        results["regret"] = measure_regret(columns, queries)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    speedups = results["speedup_vs_ta"]
    lines = [
        "Top-k serving kernel: multi-term workload wall-clock "
        "(byte-identical rankings)",
        f"  {len(results['planner_choices'])} queries over "
        f"{results['list_len']}-posting lists",
        f"  ta (reference) {results['timings_s']['ta']:8.3f}s",
    ]
    for mode in ("blockmax", "scan", "auto", "batched"):
        lines.append(
            f"  {mode:<14} {results['timings_s'][mode]:8.3f}s "
            f"({speedups[mode]:.2f}x vs reference TA)"
        )
    chosen = sorted(set(results["planner_choices"].values()))
    lines.append(f"  planner strategies exercised: {', '.join(chosen)}")
    regret = results["regret"]
    lines.append(
        f"  calibrated-auto regret: median {regret['median']:.3f}, "
        f"max {regret['max']:.3f} (gate ≤ {regret['gate']:.2f})"
    )
    report("search", "\n".join(lines))
    persist_summary("search", results)

    # The planner must exercise both vectorized strategies across the
    # workload (small-k → blockmax, large-k → scan).
    assert {"blockmax", "scan"} <= set(results["planner_choices"].values())
    if TINY:
        return  # fixed costs dominate at smoke sizes; parity checked above
    # Headline claim: the planner-selected strategy beats the legacy
    # round-robin TA ≥3x on the multi-term workload (measured ≈4–6x;
    # the floor leaves headroom for noisy shared runners).
    assert speedups["auto"] >= 3.0, speedups["auto"]
    assert speedups["batched"] >= 3.0, speedups["batched"]
    # Calibrated auto must stay within 10% of the per-query best
    # strategy at the median (ISSUE 7 acceptance gate).
    assert regret["median"] <= REGRET_GATE, regret
