"""Batch mining pipeline — term-major vs snapshot-major vs sharded.

A 56-term synthetic corpus of localised events (the injected-pattern
workload of Section 6.2) is mined three ways:

* **term-major** — the seed behaviour: replay the full timeline once
  per term (``patterns_for_term`` in a loop);
* **snapshot-major** — :class:`repro.pipeline.BatchMiner`: one sweep
  over the shared tensor feeds every tracker, skipping each term's
  quiet prefix and post-burst tail;
* **sharded** — the same pipeline with ``workers=2`` (term-sharded
  multiprocessing; informational on single-core runners).

Assertions: snapshot-major is ≥ 3× faster than term-major and its
pattern output is byte-identical; the sharded output is value-identical
(bit-equal scores — ``repr`` differs only in frozenset ordering across
processes).
"""

import os
import random
import time

from conftest import report

from repro import (
    Document,
    FrequencyTensor,
    Point,
    STComb,
    STLocal,
    SpatiotemporalCollection,
)
from repro.pipeline import BatchMiner

#: CI smoke mode: shrink the workload and skip the wall-clock assertion
#: (fixed costs dominate at smoke sizes; output parity still holds).
TINY = os.environ.get("REPRO_BENCH_TINY", "") == "1"

N_STREAMS = 32 if TINY else 64
TIMELINE = 128 if TINY else 520
N_TERMS = 12 if TINY else 56


def build_event_corpus(
    n_streams=N_STREAMS, timeline=TIMELINE, n_terms=N_TERMS, seed=11
):
    """Localised bursts: each term is active on a handful of nearby
    streams inside one short window somewhere on the timeline."""
    rng = random.Random(seed)
    coll = SpatiotemporalCollection(timeline=timeline)
    side = 8
    for i in range(n_streams):
        coll.add_stream(
            f"s{i:03d}", Point(float(i % side) * 5.0, float(i // side) * 5.0)
        )
    doc_id = 0
    for index in range(n_terms):
        term = f"event{index:03d}"
        start = rng.randint(0, timeline - 20)
        span = rng.randint(6, 12)
        anchor = rng.randint(0, n_streams - 1)
        members = {anchor}
        while len(members) < rng.randint(2, 6):
            step = rng.choice((-9, -8, -7, -1, 1, 7, 8, 9))
            members.add(max(0, min(n_streams - 1, anchor + step)))
        for t in range(start, start + span):
            for member in members:
                for _ in range(rng.randint(1, 3)):
                    coll.add_document(
                        Document(doc_id, f"s{member:03d}", t, (term,))
                    )
                    doc_id += 1
        # Ambient mentions confined to the event's neighbourhood.
        for _ in range(span * 2):
            t = rng.randint(
                max(0, start - 3), min(timeline - 1, start + span + 2)
            )
            stream = f"s{rng.randint(0, n_streams - 1):03d}"
            coll.add_document(Document(doc_id, stream, t, (term,)))
            doc_id += 1
    return coll


def run_pipeline_comparison():
    collection = build_event_corpus()
    tensor = FrequencyTensor(collection)
    locations = collection.locations()
    terms = sorted(tensor.terms)
    stlocal = STLocal()
    stcomb = STComb()

    timings = {}

    start = time.perf_counter()
    term_major = {}
    for term in terms:
        patterns = stlocal.patterns_for_term(tensor, term, locations)
        if patterns:
            term_major[term] = patterns
    timings["stlocal_term_major"] = time.perf_counter() - start

    start = time.perf_counter()
    # columnar=False isolates the snapshot-major *order* win this
    # benchmark is about; the columnar kernel on top is measured
    # separately in bench_columnar.py.
    snapshot_major = BatchMiner(stlocal=stlocal, columnar=False).mine_regional(
        tensor, terms, locations
    )
    timings["stlocal_snapshot_major"] = time.perf_counter() - start

    start = time.perf_counter()
    sharded = BatchMiner(stlocal=stlocal, workers=2).mine_regional(
        tensor, terms, locations
    )
    timings["stlocal_sharded_w2"] = time.perf_counter() - start

    start = time.perf_counter()
    comb_term_major = {}
    for term in terms:
        patterns = stcomb.patterns_for_term(tensor, term)
        if patterns:
            comb_term_major[term] = patterns
    timings["stcomb_term_major"] = time.perf_counter() - start

    start = time.perf_counter()
    comb_batch = BatchMiner(stcomb=stcomb).mine_combinatorial(tensor, terms)
    timings["stcomb_batch"] = time.perf_counter() - start

    return (
        timings,
        (term_major, snapshot_major, sharded),
        (comb_term_major, comb_batch),
    )


def test_pipeline_speedup(benchmark):
    timings, regional, combinatorial = benchmark.pedantic(
        run_pipeline_comparison, rounds=1, iterations=1
    )
    term_major, snapshot_major, sharded = regional
    comb_term_major, comb_batch = combinatorial

    speedup = timings["stlocal_term_major"] / max(
        timings["stlocal_snapshot_major"], 1e-9
    )
    sharded_speedup = timings["stlocal_term_major"] / max(
        timings["stlocal_sharded_w2"], 1e-9
    )
    lines = [
        "Pipeline: multi-term mining wall-clock "
        f"({N_TERMS} terms, {N_STREAMS} streams, {TIMELINE} snapshots)",
        f"  STLocal term-major      {timings['stlocal_term_major']:8.3f}s",
        f"  STLocal snapshot-major  {timings['stlocal_snapshot_major']:8.3f}s"
        f"  ({speedup:.2f}x)",
        f"  STLocal sharded (w=2)   {timings['stlocal_sharded_w2']:8.3f}s"
        f"  ({sharded_speedup:.2f}x)",
        f"  STComb  term-major      {timings['stcomb_term_major']:8.3f}s",
        f"  STComb  shared tensor   {timings['stcomb_batch']:8.3f}s",
    ]
    report("pipeline", "\n".join(lines))

    # Output parity: the pipeline is an optimisation, not a variant.
    assert repr(snapshot_major) == repr(term_major)
    assert sharded == term_major
    assert repr(comb_batch) == repr(comb_term_major)

    # The headline claim: one shared sweep beats per-term replay 3x+.
    if not TINY:
        assert speedup >= 3.0, f"snapshot-major speedup only {speedup:.2f}x"
