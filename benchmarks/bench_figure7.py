"""Figure 7 — Per-timestamp running time of STComb vs STLocal.

The streaming emulation of Section 6.4: STLocal updates incrementally
per snapshot while STComb must be re-applied to all data seen so far.
Shape checks (the figure's structural claims): STLocal's per-timestamp
cost stays flat along the stream, while STComb's recomputation cost
grows with the prefix length.  (In the paper STComb is also the more
expensive algorithm in absolute terms at every timestamp; our STComb
implementation is fast enough that the crossover would only occur on a
longer timeline — recorded as a deviation in EXPERIMENTS.md.)
"""

from conftest import report

from repro.eval import exp_figure7


def test_figure7(benchmark, lab):
    result = benchmark.pedantic(
        exp_figure7, args=(lab,), kwargs={"sample": 24}, rounds=1, iterations=1
    )
    report("figure7", result.render())

    timeline = len(result.timestamps)
    tail = slice(timeline - 8, timeline)
    head = slice(0, 8)
    mid = slice(timeline // 2, timeline // 2 + 8)

    stcomb_head = sum(result.stcomb_ms[head]) / 8
    stcomb_tail = sum(result.stcomb_ms[tail]) / 8
    stlocal_mid = sum(result.stlocal_ms[mid]) / 8
    stlocal_tail = sum(result.stlocal_ms[tail]) / 8

    # STComb's recomputation cost grows along the stream...
    assert stcomb_tail > 1.5 * stcomb_head
    # ...while online STLocal saturates: once the expectation models
    # cover the active streams, per-snapshot cost stops growing.
    assert stlocal_tail < 1.8 * max(stlocal_mid, 0.01)
