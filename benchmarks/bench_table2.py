"""Table 2 — Spatiotemporal pattern retrieval on artificial data.

Regenerates the JaccardSim / Start-Error / End-Error table for STLocal,
STComb and Base on distGen and randGen datasets.  Scaled-down by
default (the paper used timeline 365, 10,000 terms, 1,000 patterns);
``REPRO_FULL=1`` switches to the paper's sizes.

Shape checks (see EXPERIMENTS.md for the full paper-vs-measured
discussion): STLocal beats STComb on JaccardSim under spatially-local
distGen patterns and does better on distGen than randGen; both miners'
start errors stay a small fraction of the timeline; Base's end errors
are the worst of the three methods.
"""

from conftest import is_full_run, report

from repro.eval import exp_table2


def run_table2():
    if is_full_run():
        return exp_table2(
            timeline=365, n_streams=100, n_terms=10_000, n_patterns=1_000
        )
    return exp_table2(timeline=365, n_streams=60, n_terms=2_000, n_patterns=120)


def test_table2(benchmark):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    report("table2", result.render())

    cells = result.cells
    # Locality: STLocal beats STComb on spatially-local distGen patterns
    # and does better on distGen than on randGen (as in the paper).
    assert cells["STLocal"]["distGen"][0] > cells["STComb"]["distGen"][0]
    assert cells["STLocal"]["distGen"][0] >= cells["STLocal"]["randGen"][0]
    # Timeframe recovery: the specialised miners' start errors stay a
    # small fraction of the 365-step timeline; Base's end error is the
    # worst of the three methods on both generators (see EXPERIMENTS.md
    # for the JaccardSim deviation discussion).
    assert cells["STLocal"]["distGen"][1] < 60
    assert cells["STLocal"]["randGen"][1] < 60
    for generator in ("distGen", "randGen"):
        assert cells["Base"][generator][2] >= cells["STLocal"][generator][2]
        assert cells["STLocal"][generator][0] > 0.5
        assert cells["STComb"][generator][0] > 0.4
