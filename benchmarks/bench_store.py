"""Durable segment store — cold-start-from-disk vs full rebuild.

The serving question the store exists to answer: after a process
restart, how fast can the first query be served?

* **rebuild** — the seed path: construct the collection from raw
  records, batch-mine every term, precompute the posting lists, serve
  the query workload;
* **cold start** — open the saved segment store (checksums verified),
  ``BurstySearchEngine.from_store`` (documents materialise, posting
  columns stay memory-mapped), serve the identical workload.

Assertions: the two paths return byte-identical rankings (ids, score
float bits, tie order) for every query and strategy, and the cold
start is ≥ 10× faster than the rebuild (skipped under
``REPRO_BENCH_TINY=1``, where fixed costs dominate).  Timings and the
breakdown land in ``benchmarks/results/BENCH_store.json``.
"""

import os
import time

from conftest import persist_summary, report

from bench_columnar import build_ambient_corpus
from repro import BatchMiner, BurstySearchEngine, FrequencyTensor
from repro.store import open_store, save_search_index

TINY = os.environ.get("REPRO_BENCH_TINY", "") == "1"


ROUNDS = 1 if TINY else 3


def raw_records(collection):
    """Flatten a collection back to raw ingestable records, so the
    rebuild path pays realistic construction costs (stream registration
    plus per-document insertion), not a deep copy."""
    streams = [
        (sid, point.x, point.y) for sid, point in collection.locations().items()
    ]
    documents = [
        (d.doc_id, d.stream_id, d.timestamp, d.terms)
        for d in collection.documents()
    ]
    return streams, documents


def serve(engine, queries, k=10):
    rankings = []
    for query, strategy in queries:
        rankings.append(
            [
                (r.document.doc_id, r.score)
                for r in engine.search(query, k=k, strategy=strategy)
            ]
        )
    return rankings


def rebuild_engine(timeline, streams, documents):
    from repro import Document, Point, SpatiotemporalCollection

    collection = SpatiotemporalCollection(timeline=timeline)
    for sid, x, y in streams:
        collection.add_stream(sid, Point(x, y))
    for doc_id, sid, t, terms in documents:
        collection.add_document(Document(doc_id, sid, t, terms))
    tensor = FrequencyTensor(collection)
    mined = BatchMiner().mine_regional(
        tensor, sorted(tensor.terms), collection.locations()
    )
    return BurstySearchEngine(collection, mined)


def run_store_comparison(tmp_root):
    collection = build_ambient_corpus()
    streams, documents = raw_records(collection)
    terms = sorted(collection.vocabulary)
    queries = [(term, "auto") for term in terms[:12]]
    queries += [(" ".join(terms[:3]), s) for s in ("ta", "blockmax", "scan")]

    # Warm one rebuild (imports, allocator) and save its index.
    timeline = collection.timeline
    engine = rebuild_engine(timeline, streams, documents)
    store_path = os.path.join(tmp_root, "index")
    save_search_index(store_path, engine, "regional", terms=terms)

    rebuild_s = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        rebuilt = rebuild_engine(timeline, streams, documents)
        reference = serve(rebuilt, queries)
        rebuild_s.append(time.perf_counter() - start)

    cold_s = []
    breakdown = {}
    for round_index in range(ROUNDS):
        start = time.perf_counter()
        store = open_store(store_path)  # checksum-verified open
        opened = time.perf_counter()
        loaded = BurstySearchEngine.from_store(store)
        constructed = time.perf_counter()
        cold = serve(loaded, queries)
        finished = time.perf_counter()
        cold_s.append(finished - start)
        if round_index == 0:
            breakdown = {
                "open_verify_s": opened - start,
                "materialise_engine_s": constructed - opened,
                "first_queries_s": finished - constructed,
            }
        assert cold == reference, "loaded rankings diverge from rebuild"

    store = open_store(store_path)
    results = {
        "tiny": TINY,
        "streams": len(streams),
        "timeline": timeline,
        "terms": len(terms),
        "documents": collection.document_count,
        "queries": len(queries),
        "store_bytes": sum(e["size"] for e in store.files().values()),
        "store_files": len(store.files()),
        "rebuild_s": min(rebuild_s),
        "cold_start_s": min(cold_s),
        "speedup": min(rebuild_s) / max(min(cold_s), 1e-9),
        "cold_start_breakdown": breakdown,
        "identical": True,
    }
    return results


def test_store_cold_start(benchmark, tmp_path):
    results = benchmark.pedantic(
        run_store_comparison, args=(str(tmp_path),), rounds=1, iterations=1
    )

    lines = [
        "BENCH store: cold-start-from-disk vs full rebuild",
        f"  corpus: {results['documents']} documents, "
        f"{results['streams']} streams, {results['terms']} terms, "
        f"timeline {results['timeline']}",
        f"  store:  {results['store_files']} files, "
        f"{results['store_bytes'] / 1e6:.2f} MB",
        f"  rebuild (mine + precompute + serve) {results['rebuild_s']:8.3f}s",
        f"  cold start (open + load + serve)    {results['cold_start_s']:8.3f}s",
        f"  speedup {results['speedup']:.1f}x, rankings byte-identical: yes",
        "  cold-start breakdown: "
        + ", ".join(
            f"{key}={value:.3f}s"
            for key, value in results["cold_start_breakdown"].items()
        ),
    ]
    report("store", "\n".join(lines))
    persist_summary("store", results)

    assert results["identical"]
    if not TINY:
        assert results["speedup"] >= 10.0, (
            f"cold start only {results['speedup']:.1f}x faster than rebuild"
        )
