"""Figure 8 — Scalability against the number of streams.

distGen sweep (paper: 500…128,000 streams; default here: 100…3,200 —
``REPRO_FULL=1`` extends the sweep).  Shape checks: both algorithms
scale sub-quadratically (near-linear) in the stream count.
"""

from conftest import is_full_run, report

from repro.eval import exp_figure8


def run_figure8():
    if is_full_run():
        counts = (500, 1000, 2000, 4000, 8000, 16000)
    else:
        counts = (100, 200, 400, 800, 1600, 3200)
    return exp_figure8(stream_counts=counts)


def test_figure8(benchmark):
    result = benchmark.pedantic(run_figure8, rounds=1, iterations=1)
    report("figure8", result.render())

    n_lo, n_hi = result.stream_counts[0], result.stream_counts[-1]
    growth = n_hi / n_lo
    for series in (result.stcomb_s, result.stlocal_s):
        assert all(value >= 0.0 for value in series)
        # Sub-quadratic scaling: time grows slower than growth².
        assert series[-1] < max(series[0], 1e-4) * growth**2
