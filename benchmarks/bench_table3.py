"""Table 3 — Precision in top-10 documents.

Regenerates the retrieval-precision table for the TB, STLocal and
STComb engines plus the pairwise top-k overlaps of Section 6.3.

Shape checks: all engines achieve high precision on tier-1 queries,
every engine's average stays well above chance, and the three top-10
sets differ enough to be complementary (overlap < 1).
"""

from conftest import report

from repro.eval import exp_table3


def test_table3(benchmark, lab):
    result = benchmark.pedantic(exp_table3, args=(lab,), rounds=1, iterations=1)
    report("table3", result.render())

    avg_tb, avg_local, avg_comb = result.averages()
    assert avg_tb >= 0.5
    assert avg_local >= 0.5
    assert avg_comb >= 0.5

    # Tier-1 rows (global events drown out the tangential decoys).
    tier1 = [row for row in result.rows if row[0] in (1, 2, 5)]
    for row in tier1:
        assert min(row[2], row[3], row[4]) >= 0.7, row

    # The engines are complementary: top-10 sets are not identical.
    for value in result.overlaps.values():
        assert 0.0 < value < 1.0
