"""Table 1 — Top-Scoring Bursty Source Patterns.

Regenerates the paper's Table 1: for each of the 18 Major-Events
queries, the number of countries in the top STLocal pattern, the top
STComb pattern, and the MBR of the STComb pattern's locations.

Shape checks (the paper's qualitative claims):
* tier-1 events cover far more countries than tier-3 events, for both
  algorithms;
* the MBR column dwarfs the STComb membership for localized events —
  STComb's members are geographically scattered.
"""

from conftest import report

from repro.eval import exp_table1


def _tier_average(rows, ids, column):
    values = [row[column] for row in rows if row[0] in ids]
    return sum(values) / len(values)


def test_table1(benchmark, lab):
    result = benchmark.pedantic(exp_table1, args=(lab,), rounds=1, iterations=1)
    report("table1", result.render())

    tier1 = {1, 2, 3, 4, 5, 6}
    tier3 = {13, 14, 15, 16, 17, 18}
    # STLocal: global events >> localized events.
    assert _tier_average(result.rows, tier1, 2) > 3 * _tier_average(
        result.rows, tier3, 2
    )
    # STComb: same gradient.
    assert _tier_average(result.rows, tier1, 3) > 3 * _tier_average(
        result.rows, tier3, 3
    )
    # MBR >> STComb membership on tier-3 (scattered members).
    assert _tier_average(result.rows, tier3, 4) > 2 * _tier_average(
        result.rows, tier3, 3
    )
