"""Compressed posting columns + interval containment — the perf gates.

Four claims from the packed-codec work, each measured on the ambient
(Topix-shaped) corpus and asserted here:

* **size** — the packed codec's posting columns (delta/frame-of-
  reference bit-packed rows and tiebreaks, dictionary-coded scores with
  exact residuals) are ≥ 3× smaller per posting than the raw ``<i8`` /
  ``<f8`` columns.  Only the codec-affected files count: the shared
  doc-id table, CSR indptr and shadow columns are byte-identical
  between codecs and would only dilute the ratio.
* **cold start** — opening the packed store and serving the query
  workload is no slower than 1.1× the raw store: block-lazy decode
  means compression is not paid for with start-up latency.
* **fidelity** — rankings (document ids, float score bits, tiebreak
  order) are byte-identical across raw/packed × mmap/eager × every
  strategy, and match the freshly-mined engine.
* **containment** — :class:`~repro.spatial.index.IntervalSpatialIndex`
  (two binary searches per Morton window over a sorted label column)
  answers rectangle queries ≥ 2× faster than the legacy bucket-walking
  :class:`~repro.spatial.index.SpatialIndex` at the Figure-8-scale
  stream count, returning the same streams.

A structural laziness probe runs regardless of scale: after one
block-max query against a fresh packed engine, the segment must have
decoded strictly fewer score blocks than the store holds.

Wall-clock gates are skipped under ``REPRO_BENCH_TINY=1`` (fixed costs
dominate); ``REPRO_FULL=1`` scales the corpus to ~10× the default
benches.  The summary lands in ``BENCH_compression.json`` (results/
and the committed repo-root copy).
"""

import gc
import os
import time

import numpy as np

from conftest import persist_summary, report

from bench_columnar import build_ambient_corpus
from repro import BatchMiner, BurstySearchEngine, FrequencyTensor
from repro.spatial.geometry import Point, Rectangle
from repro.spatial.index import IntervalSpatialIndex, SpatialIndex
from repro.store import open_store, save_search_index

TINY = os.environ.get("REPRO_BENCH_TINY", "") == "1"
FULL = os.environ.get("REPRO_FULL", "") == "1"

ROUNDS = 1 if TINY else 3
#: Cold start is a ~30ms end-to-end path whose best-of must beat a
#: 1.1x ratio gate; give it more rounds than the coarse timings so one
#: scheduler hiccup on either side cannot decide the comparison.
COLD_ROUNDS = 1 if TINY else 20

if FULL:  # ~10x the default bench corpus
    CORPUS = {"n_streams": 324, "timeline": 720, "n_terms": 240}
elif TINY:
    CORPUS = {"n_streams": 64, "timeline": 96, "n_terms": 8}
else:
    CORPUS = {"n_streams": 144, "timeline": 360, "n_terms": 48}

N_POINTS = 400 if TINY else (32768 if FULL else 16384)
N_RECTANGLES = 24 if TINY else 96

#: postings/ files the codec does *not* touch (identical across
#: codecs): the shared doc-id table, the CSR indptr, the JSON meta and
#: the raw shadow CSR of pruned lists.
_SHARED_LEAVES = ("doc_table", "indptr", "meta", "shadow_")


def posting_column_bytes(store):
    """On-disk bytes of the codec-affected posting columns."""
    total = 0
    for name, entry in store.files().items():
        prefix, _, leaf = name.partition("/")
        if prefix != "postings" or leaf.startswith(_SHARED_LEAVES):
            continue
        total += entry["size"]
    return total


def serve(engine, queries, k=10):
    rankings = []
    for query, strategy in queries:
        rankings.append(
            [
                (r.document.doc_id, r.score)
                for r in engine.search(query, k=k, strategy=strategy)
            ]
        )
    return rankings


def timed_cold_start(paths, queries, rounds):
    """Best-of-``rounds`` cold start per codec, rounds interleaved.

    Alternating codecs within each round pairs their measurements
    under the same scheduler/cache conditions, so transient load skews
    both sides rather than deciding the ratio.  The freshly-mined
    corpus (tens of thousands of document objects) is still live on
    the heap here; it is frozen out of cyclic GC so collection passes
    triggered by the serve path's allocations don't spend their time
    walking that ambient heap.
    """
    gc.collect()
    gc.freeze()
    try:
        best = {}
        reference = None
        for _ in range(rounds):
            for codec, path in paths.items():
                started = time.perf_counter()
                store = open_store(path)
                engine = BurstySearchEngine.from_store(store)
                rankings = serve(engine, queries)
                elapsed = time.perf_counter() - started
                if codec not in best or elapsed < best[codec]:
                    best[codec] = elapsed
                if reference is None:
                    reference = rankings
                else:
                    assert rankings == reference
    finally:
        gc.unfreeze()
    return best


def store_comparison(tmp_root):
    collection = build_ambient_corpus(**CORPUS)
    tensor = FrequencyTensor(collection)
    terms = sorted(tensor.terms)
    started = time.perf_counter()
    mined = BatchMiner().mine_regional(tensor, terms, collection.locations())
    mining_s = time.perf_counter() - started
    engine = BurstySearchEngine(collection, mined)

    queries = [(term, "auto") for term in terms[:12]]
    queries += [(" ".join(terms[:3]), s) for s in ("ta", "blockmax", "scan")]
    reference = serve(engine, queries)

    paths = {}
    for codec in ("raw", "packed"):
        paths[codec] = os.path.join(tmp_root, codec)
        save_search_index(paths[codec], engine, "regional", terms=terms, codec=codec)

    sizes = {}
    entries = None
    for codec in ("raw", "packed"):
        store = open_store(paths[codec])
        n_entries = int(store.array("postings/indptr.npy")[-1])
        if entries is None:
            entries = n_entries
        assert n_entries == entries  # same postings either way
        sizes[codec] = posting_column_bytes(store)

    # Fidelity: every (codec, mmap) combination serves rankings
    # byte-identical to the freshly-mined engine — ids, float score
    # bits and crc32 tiebreak order alike (repr round-trips floats).
    for codec in ("raw", "packed"):
        for use_mmap in (True, False):
            loaded = BurstySearchEngine.from_store(paths[codec], mmap=use_mmap)
            assert repr(serve(loaded, queries)) == repr(reference), (
                codec,
                use_mmap,
            )

    cold_s = timed_cold_start(paths, queries, COLD_ROUNDS)

    # Structural laziness: one block-max query on a fresh packed engine
    # must leave most of the store's score blocks untouched (untouched
    # terms never decode; touched lists stop at the TA frontier).
    lazy_engine = BurstySearchEngine.from_store(paths["packed"])
    lazy_engine.search(" ".join(terms[:3]), k=10, strategy="blockmax")
    scores_packed = lazy_engine._segments._scores_packed
    blocks_decoded = scores_packed.blocks_decoded
    blocks_total = int(scores_packed._block_indptr[-1])
    assert blocks_decoded < blocks_total, (blocks_decoded, blocks_total)

    return {
        "corpus": dict(CORPUS, documents=collection.document_count),
        "mining_sweep_s": mining_s,
        "posting_entries": entries,
        "posting_column_bytes": sizes,
        "bytes_per_posting": {
            codec: size / max(entries, 1) for codec, size in sizes.items()
        },
        "compression_ratio": sizes["raw"] / max(sizes["packed"], 1),
        "cold_start_s": cold_s,
        "cold_start_overhead": cold_s["packed"] / max(cold_s["raw"], 1e-9),
        "score_blocks_decoded": blocks_decoded,
        "score_blocks_total": blocks_total,
        "queries": len(queries),
        "identical": True,
    }


def build_point_cloud(n_points, seed=29):
    """Clustered stream locations (Figure 8's synthetic map shape)."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 1000.0, size=(max(8, n_points // 256), 2))
    picks = rng.integers(0, len(centers), size=n_points)
    coords = centers[picks] + rng.normal(0.0, 18.0, size=(n_points, 2))
    return [
        (f"s{i:05d}", Point(float(x), float(y)))
        for i, (x, y) in enumerate(coords)
    ]


def build_rectangles(points, n_rectangles, seed=31):
    """Query rectangles spanning small cells to near-global extents."""
    rng = np.random.default_rng(seed)
    xs = np.asarray([p.x for _, p in points])
    ys = np.asarray([p.y for _, p in points])
    span_x = float(xs.max() - xs.min()) or 1.0
    span_y = float(ys.max() - ys.min()) or 1.0
    rectangles = []
    for index in range(n_rectangles):
        frac = 0.01 * (2.0 ** (index % 7))  # 1% .. 64% of the extent
        cx = rng.uniform(xs.min(), xs.max())
        cy = rng.uniform(ys.min(), ys.max())
        half_w = 0.5 * frac * span_x
        half_h = 0.5 * frac * span_y
        rectangles.append(
            Rectangle(cx - half_w, cy - half_h, cx + half_w, cy + half_h)
        )
    return rectangles


def containment_comparison():
    points = build_point_cloud(N_POINTS)
    rectangles = build_rectangles(points, N_RECTANGLES)
    legacy = SpatialIndex(points)
    interval = IntervalSpatialIndex(points)

    # Same streams from both indexes, for every rectangle.
    matched = 0
    for rectangle in rectangles:
        expected = sorted(legacy.query_rectangle(rectangle))
        assert sorted(interval.query_rectangle(rectangle)) == expected
        matched += len(expected)

    timings = {}
    for name, index in (("set_membership", legacy), ("interval", interval)):
        best = None
        for _ in range(ROUNDS):
            started = time.perf_counter()
            for rectangle in rectangles:
                index.query_rectangle(rectangle)
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
            if os.environ.get("DBG"):
                print(f"{path.rsplit('/',1)[-1]} round {elapsed*1000:.1f}ms", flush=True)
        timings[name] = best

    return {
        "streams": len(points),
        "rectangles": len(rectangles),
        "matches": matched,
        "set_membership_s": timings["set_membership"],
        "interval_s": timings["interval"],
        "speedup": timings["set_membership"] / max(timings["interval"], 1e-9),
        "identical": True,
    }


def test_compression_and_containment(benchmark, tmp_path):
    def run():
        return {
            "tiny": TINY,
            "full": FULL,
            "store": store_comparison(str(tmp_path)),
            "containment": containment_comparison(),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    store = results["store"]
    containment = results["containment"]
    lines = [
        "BENCH compression: packed posting columns + interval containment",
        f"  corpus: {store['corpus']['documents']} documents, "
        f"{store['corpus']['n_terms']} terms, "
        f"{store['posting_entries']} postings "
        f"(mining sweep {store['mining_sweep_s']:.3f}s)",
        f"  posting columns: raw "
        f"{store['bytes_per_posting']['raw']:.2f} B/posting, packed "
        f"{store['bytes_per_posting']['packed']:.2f} B/posting "
        f"({store['compression_ratio']:.2f}x smaller)",
        f"  cold start: raw {store['cold_start_s']['raw']:.3f}s, packed "
        f"{store['cold_start_s']['packed']:.3f}s "
        f"({store['cold_start_overhead']:.2f}x)",
        f"  laziness: {store['score_blocks_decoded']} of "
        f"{store['score_blocks_total']} score blocks decoded by one "
        "block-max query",
        f"  containment: {containment['streams']} streams, "
        f"{containment['rectangles']} rectangles — set-membership "
        f"{containment['set_membership_s']:.3f}s, interval "
        f"{containment['interval_s']:.3f}s "
        f"({containment['speedup']:.2f}x)",
        "  rankings and containment results byte-identical: yes",
    ]
    report("compression", "\n".join(lines))
    persist_summary("compression", results)

    assert store["identical"] and containment["identical"]
    if TINY:
        return  # fixed costs dominate at smoke sizes; parity checked above
    # Headline gates (measured ≈4.3x size, ≈1.0x cold start, >2x
    # containment; floors leave headroom for noisy shared runners).
    assert store["compression_ratio"] >= 3.0, store["compression_ratio"]
    assert store["cold_start_overhead"] <= 1.1, store["cold_start_overhead"]
    assert containment["speedup"] >= 2.0, containment["speedup"]
