"""Package metadata; install with ``pip install -e .``."""

import os
import re

from setuptools import find_packages, setup


def read_version() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    path = os.path.join(here, "src", "repro", "_version.py")
    with open(path) as handle:
        match = re.search(r'__version__ = "([^"]+)"', handle.read())
    if match is None:
        # An assert here used to fall through to an opaque TypeError
        # (`match.group` on None) — fail with the actual problem.
        raise RuntimeError(
            f"could not parse __version__ from {path}: expected a line "
            'like __version__ = "X.Y.Z"'
        )
    return match.group(1)


setup(
    name="repro-spatiotemporal-burstiness",
    version=read_version(),
    description=(
        "Reproduction of 'On the Spatiotemporal Burstiness of Terms' "
        "(Lappas, Vieira, Gunopulos, Tsotras - PVLDB 5(9), 2012)"
    ),
    long_description=(
        "Spatiotemporal burstiness pattern mining (STComb, STLocal, "
        "R-Bursty), a snapshot-major batch mining pipeline, "
        "pattern-aware bursty-document retrieval with the Threshold "
        "Algorithm, and a live append-only ingestion + serving layer "
        "with delta posting lists verified against batch rebuilds."
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
        "cov": ["pytest-cov"],
    },
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Information Analysis",
    ],
)
